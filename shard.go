package lsmssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsmssd/internal/block"
	"lsmssd/internal/compaction"
	"lsmssd/internal/core"
	"lsmssd/internal/health"
	"lsmssd/internal/invariant"
	"lsmssd/internal/manifest"
	"lsmssd/internal/obs"
	"lsmssd/internal/policy"
	"lsmssd/internal/retry"
	"lsmssd/internal/storage"
	"lsmssd/internal/wal"
)

// shard is one of the DB's independent LSM trees: its own memtable and
// storage levels (core.Tree), device file, write-ahead log, compaction
// scheduler, and writer lock. The router (db.go) hash-partitions the key
// space across shards, so two shards never store the same key and their
// writer locks are never needed together — except by the sanctioned
// fan-out helper DB.lockAllShards, which acquires them in ascending shard
// order (the shard-lock-order lint rule checks both properties).
//
// Everything below is a per-shard port of the pre-sharding DB internals;
// the durability protocol (log → apply → checkpoint-on-rotation) is
// unchanged, it just runs once per shard over per-shard files.
type shard struct {
	id   int
	db   *DB
	path string // device file path; "" for an in-memory shard

	writerMu sync.Mutex // serializes this shard's mutations, checkpoints, tuning
	tree     *core.Tree
	sched    *compaction.Scheduler
	raw      storage.Device // the base device (FileDevice/MemDevice), for Close and reclaim
	// dev is what the tree reads and writes through: raw, behind the
	// optional Options.DeviceWrap decoration (the fault-injection seam)
	// and the transient-read retry layer. rdev is the same object typed
	// for retry accounting. Checkpoint syncs through dev so injected sync
	// faults are observed; reclaim and close still address raw directly.
	dev  storage.Device
	rdev *storage.RetryDevice

	// health is the shard's fault-domain state machine (health.go,
	// DESIGN.md §16): write-side faults demote only this shard, reads
	// keep serving until Failed, and the scrubber promotes a clean
	// Degraded shard back to Healthy.
	health *health.Tracker

	// Scrubber goroutine state (nil/zero unless Options.ScrubInterval is
	// set); the counters feed ShardStats.
	scrubQuit                                              chan struct{}
	scrubDone                                              chan struct{}
	scrubOnce                                              sync.Once
	scrubPasses, scrubChecked, scrubCorrupt, scrubRepaired atomic.Int64

	// lat is the shard's per-operation latency histogram set, recording
	// only when Options.Metrics (or MetricsAddr) enabled it. The router
	// times each point op against the owning shard's set; the tree and
	// scheduler record their merge/stall/WAL series into the same set, so
	// Stats.Shards carries a complete per-shard latency breakdown and the
	// DB aggregate is the merge of these (plus the router-level set for
	// multi-shard ops).
	lat *obs.LatencySet

	// Write-ahead log state (nil/zero unless Options.WAL.Enabled). lastSeq
	// is the sequence of the newest frame logged by this shard, guarded by
	// writerMu; the shard's checkpoint manifest records it as the replay
	// cutoff. recovery captures what Open's replay did, for Stats.
	wal      *wal.Log
	lastSeq  uint64
	recovery WALRecoveryStats
}

// shardPath derives shard id's device file path. Shard 0 keeps the
// user-visible Options.Path byte-for-byte — a single-shard store's file
// layout is exactly the unsharded engine's — and every further shard
// appends its index. Manifest and WAL paths derive from this one as
// before (path+".manifest", path+".wal.*").
func shardPath(path string, id int) string {
	if path == "" || id == 0 {
		return path
	}
	return fmt.Sprintf("%s.shard%d", path, id)
}

// openShard builds one fully-operational shard: tree (fresh or restored
// from its manifest), compaction scheduler, and recovered write-ahead
// log. On error the shard's own resources are released; the caller
// tears down previously opened shards.
func (db *DB) openShard(id int) (*shard, error) {
	opts := db.opts
	s := &shard{id: id, db: db, path: shardPath(opts.Path, id), lat: &obs.LatencySet{}}
	s.lat.Enable(db.lat.Enabled())
	s.health = s.healthTracker()
	cfg := core.Config{
		// One policy instance per shard: policies carry mutable state (RR
		// cursors, Mixed thresholds) and each shard's merges run on its own
		// goroutines.
		Policy:          opts.buildPolicy(),
		BlockCapacity:   opts.RecordsPerBlock,
		K0:              opts.MemtableBlocks,
		Gamma:           opts.Gamma,
		Epsilon:         opts.Epsilon,
		CacheBlocks:     opts.CacheBlocks,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Seed:            opts.Seed,
		Shard:           id,
		Bus:             db.bus,
		Lat:             s.lat,
	}
	if opts.Paranoid {
		// Mid-cascade audits tolerate in-flight records: a merge may land
		// in a level whose own overflow the cascade has not reached yet.
		// Under background compaction the audit runs on the scheduler
		// goroutine between concurrently admitted writes, so L0's bound is
		// the stall gate's StopTrigger rather than K0.
		audit := invariant.Options{MidCascade: true}
		if opts.CompactionMode == BackgroundCompaction {
			audit.L0CapacityBlocks = opts.StopTrigger
		}
		cfg.Auditor = func(t *core.Tree) error {
			return invariant.Check(t, audit)
		}
	}

	restored := false
	if s.path != "" {
		st, err := manifest.Load(manifestPath(s.path))
		switch {
		case err == nil:
			if err := s.restore(cfg, st); err != nil {
				return nil, err
			}
			restored = true
		case errors.Is(err, manifest.ErrNoManifest):
			// fresh shard below
		default:
			return nil, err
		}
	}
	if !restored {
		if err := s.create(cfg); err != nil {
			return nil, err
		}
	}

	mode := compaction.Sync
	if opts.CompactionMode == BackgroundCompaction {
		mode = compaction.Background
	}
	sched, err := compaction.New(compaction.Config{
		Tree:           s.tree,
		Mu:             &s.writerMu,
		Mode:           mode,
		SlowdownBlocks: opts.SlowdownTrigger,
		StopBlocks:     opts.StopTrigger,
		Bus:            db.bus,
		Lat:            s.lat,
	})
	if err != nil {
		return nil, errors.Join(err, s.raw.Close())
	}
	s.sched = sched
	if err := s.openWAL(); err != nil {
		s.sched.Stop()
		return nil, errors.Join(err, s.raw.Close())
	}
	s.startScrub()
	return s, nil
}

// wrapDevice builds the shard's device stack over base: the optional
// Options.DeviceWrap decoration (fault injection for tests and the
// chaos harness), then the transient-read retry layer, whose exhaustion
// callback demotes the shard. The result is what the tree and the
// checkpoint sync use; base stays in s.raw for close/reclaim.
func (s *shard) wrapDevice(base storage.Device) storage.Device {
	dev := base
	if w := s.db.opts.DeviceWrap; w != nil {
		dev = w(s.id, dev)
	}
	s.rdev = storage.NewRetryDevice(dev, retry.Policy{
		MaxAttempts: s.db.opts.ReadRetries,
		Seed:        s.db.opts.Seed + int64(s.id),
	}, func(err error) {
		s.health.Degrade("read-retries-exhausted", err)
	})
	s.dev = s.rdev
	return s.dev
}

// create sets the shard up over a fresh device.
func (s *shard) create(cfg core.Config) error {
	var dev storage.Device
	if s.path != "" {
		fd, err := storage.OpenFileDevice(s.path, s.db.opts.BlockSize)
		if err != nil {
			return err
		}
		if s.db.opts.WAL.Enabled {
			fd.SetDeferRecycle(true)
		}
		dev = fd
	} else {
		dev = storage.NewMemDevice()
	}
	cfg.Device = s.wrapDevice(dev)
	tree, err := core.New(cfg)
	if err != nil {
		return errors.Join(err, dev.Close())
	}
	s.tree, s.raw = tree, dev
	return nil
}

// restore rebuilds the shard from its manifest over the existing device
// file, first checking that the on-disk shard identity and tree
// parameters match the requested options.
func (s *shard) restore(cfg core.Config, st manifest.State) error {
	opts := s.db.opts
	if st.Config.Shards != opts.Shards || st.Config.ShardID != s.id {
		return fmt.Errorf("lsmssd: %s was written as shard %d of a %d-shard store, but Options.Shards is %d (opening as shard %d); reopen with the shard count the store was created with",
			s.path, st.Config.ShardID, st.Config.Shards, opts.Shards, s.id)
	}
	want := manifest.Config{
		BlockCapacity: cfg.BlockCapacity,
		K0:            cfg.K0,
		Gamma:         cfg.Gamma,
		Epsilon:       cfg.Epsilon,
		Seed:          cfg.Seed,
	}
	if st.Config.BlockCapacity != want.BlockCapacity || st.Config.K0 != want.K0 ||
		st.Config.Gamma != want.Gamma || st.Config.Epsilon != want.Epsilon {
		return fmt.Errorf("lsmssd: options (B=%d K0=%d Γ=%d ε=%g) do not match manifest (B=%d K0=%d Γ=%d ε=%g)",
			want.BlockCapacity, want.K0, want.Gamma, want.Epsilon,
			st.Config.BlockCapacity, st.Config.K0, st.Config.Gamma, st.Config.Epsilon)
	}
	// The layout shaped the on-device runs (a tiered level holds several
	// sorted runs; a leveled one exactly one), so reopening under a
	// different layout would hand the tree a structure its invariants
	// reject. Refuse the skew instead of guessing.
	lay := policy.LayoutOf(cfg.Policy).Normalized()
	disk := policy.Layout{Kind: policy.LayoutKind(st.Config.Layout), TierRuns: st.Config.TierRuns}
	if lay != disk.Normalized() {
		return fmt.Errorf("lsmssd: options layout %s does not match manifest layout %s; reopen with the layout the store was written under",
			lay, disk.Normalized())
	}
	var live []storage.BlockID
	for _, runs := range st.Runs {
		for _, metas := range runs {
			for _, m := range metas {
				live = append(live, m.ID)
			}
		}
	}
	fd, err := storage.ReopenFileDevice(s.path, opts.BlockSize, live)
	if err != nil {
		return err
	}
	if opts.WAL.Enabled {
		fd.SetDeferRecycle(true)
	}
	cfg.Device = s.wrapDevice(fd)
	tree, err := core.Restore(cfg, core.ExportedState{Runs: st.Runs, Memtable: st.Memtable})
	if err != nil {
		return errors.Join(err, fd.Close())
	}
	if opts.Paranoid {
		if err := invariant.CheckTree(tree); err != nil {
			return errors.Join(fmt.Errorf("lsmssd: restored state: %w", err), fd.Close())
		}
	}
	s.tree, s.raw, s.lastSeq = tree, fd, st.WALSeq
	return nil
}

// openWAL performs crash recovery and positions the shard's log for
// appending. With the WAL disabled it only verifies that no unreplayed
// frames exist on disk — Open must never silently orphan acknowledged
// writes.
func (s *shard) openWAL() error {
	if s.path == "" {
		return nil
	}
	opts := s.db.opts
	base := walBase(s.path)
	if !opts.WAL.Enabled {
		has, err := wal.HasFramesAfter(base, s.lastSeq)
		if err != nil {
			return fmt.Errorf("lsmssd: inspecting write-ahead log: %w", err)
		}
		if has {
			return fmt.Errorf("lsmssd: %s holds write-ahead log frames beyond the last checkpoint, but Options.WAL is disabled; reopen with the WAL enabled to recover them (or delete the segment files to discard them)", base)
		}
		return nil
	}

	start := time.Now()
	info, err := wal.Replay(base, s.lastSeq, func(seq uint64, ops []wal.Op) error {
		return s.applyReplayed(ops)
	})
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log replay: %w", err)
	}
	if info.LastSeq > s.lastSeq {
		s.lastSeq = info.LastSeq
	}
	log, err := wal.Open(base, s.lastSeq+1, wal.Options{
		Policy:       wal.SyncPolicy(opts.WAL.Sync),
		Interval:     opts.WAL.Interval,
		SegmentBytes: opts.WAL.SegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log open: %w", err)
	}
	s.wal = log
	s.recovery = WALRecoveryStats{
		Recovered: info.Frames > 0 || info.TornBytes > 0,
		Segments:  info.Segments,
		Frames:    info.Frames,
		Ops:       info.Ops,
		TornBytes: info.TornBytes,
	}
	if info.Frames > 0 {
		// Fold the replayed state into a fresh checkpoint immediately:
		// recovery converges instead of replaying an ever-longer log, and
		// the covered segments are garbage-collected.
		s.writerMu.Lock()
		err := s.checkpointLocked()
		s.writerMu.Unlock()
		if err != nil {
			return errors.Join(fmt.Errorf("lsmssd: post-recovery checkpoint: %w", err), s.wal.Close())
		}
	}
	if s.db.bus.Enabled() {
		s.db.bus.Publish(obs.RecoveryEvent{
			Segments:  info.Segments,
			Frames:    info.Frames,
			Ops:       info.Ops,
			TornBytes: info.TornBytes,
			Duration:  time.Since(start),
		})
	}
	return nil
}

// applyReplayed pushes one recovered WAL frame through the normal write
// path — admission, the writer lock, a batched apply, and the cascade
// notification — so recovery exercises exactly the machinery of live
// traffic.
func (s *shard) applyReplayed(ops []wal.Op) error {
	batch := make([]core.BatchOp, len(ops))
	for i, op := range ops {
		batch[i] = core.BatchOp{Key: block.Key(op.Key), Payload: op.Value, Delete: op.Delete}
	}
	if err := s.sched.Admit(); err != nil {
		return err
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if err := s.tree.ApplyBatch(batch); err != nil {
		return err
	}
	if err := s.sched.Notify(); err != nil {
		return err
	}
	return s.paranoidSteadyCheck()
}

// checkpointLocked persists the shard's current state under its writer
// lock. With the WAL enabled it also advances the durability horizon, in
// a fixed order: the device is synced first (the manifest must never
// reference a block the device could still lose), the manifest then
// records lastSeq as the replay cutoff, and only after that checkpoint
// is durable do freed block slots become reusable and fully covered WAL
// segments get deleted.
func (s *shard) checkpointLocked() error {
	if s.path == "" {
		return nil
	}
	if s.wal != nil {
		// Sync through the wrapped device, not s.raw, so injected sync
		// faults are observed and demote the shard: a checkpoint whose
		// sync failed must not advance the durability horizon, and a
		// device that cannot sync cannot promise durability for further
		// writes either.
		if sy, ok := s.dev.(storage.Syncer); ok {
			if err := sy.Sync(); err != nil {
				s.health.DemoteReadOnly("sync-failed", err)
				return fmt.Errorf("lsmssd: syncing device before checkpoint: %w", err)
			}
		}
	}
	st := s.tree.Export()
	cfg := s.tree.Config()
	lay := policy.LayoutOf(cfg.Policy).Normalized()
	if err := manifest.Save(manifestPath(s.path), manifest.State{
		Config: manifest.Config{
			BlockCapacity: cfg.BlockCapacity,
			K0:            cfg.K0,
			Gamma:         cfg.Gamma,
			Epsilon:       cfg.Epsilon,
			Seed:          cfg.Seed,
			Shards:        s.db.opts.Shards,
			ShardID:       s.id,
			Layout:        int(lay.Kind),
			TierRuns:      lay.TierRuns,
		},
		WALSeq:   s.lastSeq,
		Runs:     st.Runs,
		Memtable: st.Memtable,
	}); err != nil {
		return err
	}
	if s.wal == nil {
		return nil
	}
	if fd, ok := s.raw.(*storage.FileDevice); ok {
		fd.ReclaimFreed()
	}
	removed, err := s.wal.GC(s.lastSeq)
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log gc: %w", err)
	}
	if removed > 0 && s.db.bus.Enabled() {
		ws := s.wal.Stats()
		s.db.bus.Publish(obs.WALEvent{Kind: "gc", Segments: ws.Segments, Removed: removed, LastSeq: s.lastSeq})
	}
	return nil
}

// checkpoint takes the shard's writer lock and persists its state.
func (s *shard) checkpoint() error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.db.closed.Load() {
		return ErrClosed
	}
	return s.checkpointLocked()
}

// logMutation appends ops to the shard's write-ahead log as a single
// frame — group commit: one frame, and under SyncEvery one fsync, per
// request regardless of batch size. A logging failure means the request
// was never made durable, so the caller must fail it without touching
// the tree. When the append sealed a segment the caller checkpoints
// after applying the ops (after, because the checkpoint's WALSeq covers
// this frame — the manifest state must include it). Caller holds
// writerMu.
//
// Span attribution: the whole append is timed as PhaseWALAppend, then
// the log's cumulative fsync-nanoseconds delta across the call is
// shifted to PhaseWALSync — writerMu serializes this shard's appends,
// so the delta is exactly this frame's group-commit fsync wait.
func (s *shard) logMutation(ops []wal.Op, sp *obs.Span) (rotated bool, err error) {
	if s.wal == nil {
		return false, nil
	}
	var syncBefore int64
	if sp != nil {
		syncBefore = s.wal.SyncNanos()
		sp.To(obs.PhaseWALAppend)
	}
	start := s.lat.Start()
	seq, rotated, err := s.wal.Append(ops)
	s.lat.Done(obs.OpWALAppend, start)
	if sp != nil {
		sp.To(obs.PhaseOther)
		sp.Shift(obs.PhaseWALAppend, obs.PhaseWALSync, time.Duration(s.wal.SyncNanos()-syncBefore))
	}
	if err != nil {
		// rotated can be true even on error: the rotation succeeded before
		// the frame write failed. Checkpoint now anyway, so the sealed
		// segment is covered and GC'd instead of lingering until the next
		// rotation.
		if rotated {
			if cerr := s.checkpointLocked(); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
		return false, fmt.Errorf("lsmssd: write-ahead log append: %w", err)
	}
	s.lastSeq = seq
	if rotated && s.db.bus.Enabled() {
		ws := s.wal.Stats()
		s.db.bus.Publish(obs.WALEvent{Kind: "rotate", Segments: ws.Segments, LastSeq: seq})
	}
	return rotated, nil
}

// put is Put for the keys this shard owns. The span (nil when tracing is
// off) attributes the op's time: admission under PhaseStallWait (the
// pacing sleep and stall gate live inside Admit), the WAL frame under
// PhaseWALAppend/WALSync (logMutation), the memtable insert under
// PhaseMemtable, and the cascade notification under PhaseCascade — in
// sync compaction mode the whole inline merge cascade runs inside
// Notify, which is exactly the write-amplification time the phase names.
func (s *shard) put(key uint64, value []byte, sp *obs.Span) error {
	if err := s.writable(); err != nil {
		return err
	}
	err := s.doPut(key, value, sp)
	if err != nil {
		s.noteWriteError(err)
	}
	return err
}

func (s *shard) doPut(key uint64, value []byte, sp *obs.Span) error {
	sp.To(obs.PhaseStallWait)
	if err := s.sched.Admit(); err != nil {
		return err
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	sp.To(obs.PhaseOther)
	if s.db.closed.Load() {
		return ErrClosed
	}
	rotated, err := s.logMutation([]wal.Op{{Key: key, Value: value}}, sp)
	if err != nil {
		return err
	}
	sp.To(obs.PhaseMemtable)
	err = s.tree.Put(block.Key(key), value)
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	sp.To(obs.PhaseCascade)
	err = s.sched.Notify()
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	if rotated {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return s.paranoidSteadyCheck()
}

// delete is Delete for the keys this shard owns; phase attribution as in
// put.
func (s *shard) delete(key uint64, sp *obs.Span) error {
	if err := s.writable(); err != nil {
		return err
	}
	err := s.doDelete(key, sp)
	if err != nil {
		s.noteWriteError(err)
	}
	return err
}

func (s *shard) doDelete(key uint64, sp *obs.Span) error {
	sp.To(obs.PhaseStallWait)
	if err := s.sched.Admit(); err != nil {
		return err
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	sp.To(obs.PhaseOther)
	if s.db.closed.Load() {
		return ErrClosed
	}
	rotated, err := s.logMutation([]wal.Op{{Key: key, Delete: true}}, sp)
	if err != nil {
		return err
	}
	sp.To(obs.PhaseMemtable)
	err = s.tree.Delete(block.Key(key))
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	sp.To(obs.PhaseCascade)
	err = s.sched.Notify()
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	if rotated {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return s.paranoidSteadyCheck()
}

// applyOps executes one shard's slice of a WriteBatch as a single atomic
// writer step: one admission, one writer-lock acquisition, one WAL frame
// (group commit), one batched apply. Phase attribution as in put.
func (s *shard) applyOps(ops []core.BatchOp, sp *obs.Span) error {
	if err := s.writable(); err != nil {
		return err
	}
	err := s.doApplyOps(ops, sp)
	if err != nil {
		s.noteWriteError(err)
	}
	return err
}

func (s *shard) doApplyOps(ops []core.BatchOp, sp *obs.Span) error {
	sp.To(obs.PhaseStallWait)
	if err := s.sched.Admit(); err != nil {
		return err
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	sp.To(obs.PhaseOther)
	if s.db.closed.Load() {
		return ErrClosed
	}
	var rotated bool
	if s.wal != nil && len(ops) > 0 {
		wops := make([]wal.Op, len(ops))
		for i, op := range ops {
			wops[i] = wal.Op{Key: uint64(op.Key), Value: op.Payload, Delete: op.Delete}
		}
		var err error
		rotated, err = s.logMutation(wops, sp)
		if err != nil {
			return err
		}
	}
	sp.To(obs.PhaseMemtable)
	err := s.tree.ApplyBatch(ops)
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	sp.To(obs.PhaseCascade)
	err = s.sched.Notify()
	sp.To(obs.PhaseOther)
	if err != nil {
		return err
	}
	if rotated {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return s.paranoidSteadyCheck()
}

// paranoidSteadyCheck asserts the strict (post-cascade) bounds after a
// mutating request when Paranoid is set. Metadata only: the per-merge
// auditor already verified block contents. The strictness is keyed off
// the scheduler's state, not the call position: with the background
// cascade still draining, the relaxed mid-cascade bounds apply.
func (s *shard) paranoidSteadyCheck() error {
	if !s.db.opts.Paranoid {
		return nil
	}
	o := invariant.Options{SkipContents: true}
	if s.sched.Pending() {
		o.MidCascade = true
		o.L0CapacityBlocks = s.db.opts.StopTrigger
	}
	return invariant.Check(s.tree, o)
}

// acquireView pins the shard's current read snapshot, translating a
// closed engine into the public sentinel. Callers must Release the
// returned view.
func (s *shard) acquireView() (*core.View, error) {
	if s.db.closed.Load() {
		return nil, ErrClosed
	}
	v, err := s.tree.AcquireView()
	if err != nil {
		return nil, ErrClosed
	}
	return v, nil
}

// validate checks the shard's structural invariants against its current
// snapshot, then the device-accounting cross-check under its writer lock.
func (s *shard) validate() error {
	v, err := s.acquireView()
	if err != nil {
		return err
	}
	defer v.Release()
	if err := v.Validate(); err != nil {
		return err
	}
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.db.closed.Load() {
		return ErrClosed
	}
	return s.tree.ValidateAccounting()
}

// forceGrow adds a storage level to this shard's tree.
func (s *shard) forceGrow() {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	if s.db.closed.Load() {
		return
	}
	s.tree.ForceGrow()
}

// closeLocked checkpoints and releases the shard's resources. The caller
// holds the shard's writer lock (via lockAllShards) and has stopped the
// scheduler.
func (s *shard) closeLocked() error {
	err := s.checkpointLocked()
	var werr error
	if s.wal != nil {
		werr = s.wal.Close()
		s.wal = nil
	}
	s.tree.MarkClosed()
	return errors.Join(err, werr, s.raw.Close())
}

// crashLocked abandons the shard as a power cut would: no checkpoint, no
// device sync, buffered WAL frames truncated. Caller holds the shard's
// writer lock and has stopped the scheduler.
func (s *shard) crashLocked() error {
	var werr error
	if s.wal != nil {
		werr = s.wal.Crash()
		s.wal = nil
	}
	s.tree.MarkClosed()
	return errors.Join(werr, s.raw.Close())
}

// lockedTree exposes the shard's engine under its writer lock to sibling
// files (tuning — operations that drive the live tree).
func (s *shard) lockedTree() (*core.Tree, func()) {
	s.writerMu.Lock()
	return s.tree, s.writerMu.Unlock
}
