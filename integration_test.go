package lsmssd_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"lsmssd"
)

// TestIntegrationFileDeviceChurn drives a file-backed DB through sustained
// mixed traffic with every feature enabled (cache, blooms, preservation)
// and verifies contents against a model plus all structural invariants.
func TestIntegrationFileDeviceChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "churn.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 10,
		MergePolicy:     lsmssd.ChooseBest,
		Paranoid:        true,
	}
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(99))
	model := map[uint64][]byte{}
	for i := 0; i < 30_000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(5) {
		case 0:
			if err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		default:
			v := []byte(fmt.Sprintf("v%d-%d", k, i))
			if err := db.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
		if i%10_000 == 9_999 {
			if err := db.Validate(); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}

	for k := uint64(0); k < 3000; k++ {
		v, ok, err := db.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := model[k]
		if ok != wantOK || (ok && string(v) != string(want)) {
			t.Fatalf("Get(%d) = %q,%v want %q,%v", k, v, ok, want, wantOK)
		}
	}

	// Full scan agrees with the model.
	seen := 0
	var prev int64 = -1
	err = db.Scan(0, 1<<62, func(k uint64, v []byte) bool {
		if int64(k) <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = int64(k)
		want, ok := model[k]
		if !ok || string(v) != string(want) {
			t.Fatalf("scan: key %d = %q, model %q (%v)", k, v, want, ok)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("scan saw %d keys, model has %d", seen, len(model))
	}

	s := db.Stats()
	if s.BloomSkipped == 0 {
		t.Log("bloom filters never skipped a read (possible but unusual)")
	}
	if s.CacheHits == 0 {
		t.Error("cache never hit")
	}
	t.Logf("height=%d writes=%d reads=%d bloomSkip=%d cacheHits=%d",
		s.Height, s.BlocksWritten, s.BlocksRead, s.BloomSkipped, s.CacheHits)
}

// TestIntegrationUpdateHeavy exercises overwrite-heavy traffic (updates of
// a small hot set) where record consolidation during merges matters.
func TestIntegrationUpdateHeavy(t *testing.T) {
	db, err := lsmssd.Open(lsmssd.Options{
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(5))
	latest := map[uint64]int{}
	for i := 0; i < 20_000; i++ {
		k := uint64(rng.Intn(100)) // hot set of 100 keys
		if err := db.Put(k, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		latest[k] = i
	}
	for k, i := range latest {
		v, ok, err := db.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v", k, ok, err)
		}
		if string(v) != fmt.Sprint(i) {
			t.Fatalf("Get(%d) = %s, want %d", k, v, i)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Consolidation must keep the store near the hot-set size, not the
	// update count.
	if r := db.Stats().Records; r > 2000 {
		t.Errorf("store holds %d records for a 100-key hot set", r)
	}
}

// TestIntegrationSequentialInsert covers the classic time-series pattern:
// monotonically increasing keys, where block preservation should shine
// (new data never interleaves with old).
func TestIntegrationSequentialInsert(t *testing.T) {
	run := func(disableP bool) int64 {
		db, err := lsmssd.Open(lsmssd.Options{
			RecordsPerBlock: 16,
			MemtableBlocks:  4,
			Gamma:           4,
			Delta:           0.2,
			CacheBlocks:     -1,
			DisablePreserve: disableP,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for k := uint64(0); k < 50_000; k++ {
			if err := db.Put(k, []byte("tick")); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Validate(); err != nil {
			t.Fatal(err)
		}
		return db.Stats().BlocksWritten
	}
	with := run(false)
	without := run(true)
	if with >= without {
		t.Errorf("preservation did not help sequential inserts: %d vs %d writes", with, without)
	}
	t.Logf("sequential inserts: %d writes with preservation, %d without", with, without)
}
