package lsmssd_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lsmssd"
	"lsmssd/internal/crashloop"
)

// fileOpts returns file-backed options sized so records reach the
// storage levels after a few dozen writes.
func fileOpts(path string) lsmssd.Options {
	return lsmssd.Options{
		Path:            path,
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
	}
}

func walOpts(path string, sync lsmssd.SyncPolicy) lsmssd.Options {
	o := fileOpts(path)
	o.WAL = lsmssd.WALOptions{Enabled: true, Sync: sync, SegmentBytes: 8 << 10}
	return o
}

// TestCrashLoopSyncEvery is the headline durability gate: at least 50
// randomized power cuts, every one recovering with zero acked-write loss
// and a fully validated store.
func TestCrashLoopSyncEvery(t *testing.T) {
	report, err := crashloop.Run(crashloop.Config{
		Dir:       t.TempDir(),
		Iters:     55,
		MaxOps:    60,
		Seed:      1,
		KeySpace:  256,
		Sync:      lsmssd.SyncEvery,
		CrashProb: 1.0, // every cycle is a power cut
		TornTail:  true,
	})
	t.Log(report)
	if err != nil {
		t.Fatal(err)
	}
	if report.Crashes < 50 {
		t.Fatalf("only %d power cuts exercised, want at least 50", report.Crashes)
	}
	if report.LostFrames != 0 {
		t.Fatalf("SyncEvery lost %d acked frames", report.LostFrames)
	}
	if report.TornInjected == 0 || report.TornBytes == 0 {
		t.Errorf("no torn tails were exercised (injected %d, truncated %d bytes)",
			report.TornInjected, report.TornBytes)
	}
	if report.Recoveries == 0 {
		t.Error("no recovery ever replayed frames")
	}
}

// TestCrashLoopSyncInterval checks the weaker policy's contract: crashes
// may lose the un-synced suffix, but the recovered state is always a
// consistent prefix of the acked history and never regresses past a
// checkpoint.
func TestCrashLoopSyncInterval(t *testing.T) {
	report, err := crashloop.Run(crashloop.Config{
		Dir:      t.TempDir(),
		Iters:    20,
		MaxOps:   80,
		Seed:     2,
		KeySpace: 256,
		Sync:     lsmssd.SyncInterval,
		Interval: time.Millisecond,
		TornTail: true,
	})
	t.Log(report)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashLoopSyncNever: no per-write durability at all, yet recovery
// must still land on a consistent acked prefix (checkpoints and sealed
// segments are the only durability points).
func TestCrashLoopSyncNever(t *testing.T) {
	report, err := crashloop.Run(crashloop.Config{
		Dir:      t.TempDir(),
		Iters:    15,
		MaxOps:   80,
		Seed:     3,
		KeySpace: 256,
		Sync:     lsmssd.SyncNever,
		TornTail: true,
	})
	t.Log(report)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashLoopLayouts runs the power-cut harness over the non-leveling
// layouts under Paranoid: recovery must restore the tiered multi-run
// structure (via the v4 manifest plus WAL replay) with zero acked-write
// loss and a fully validated store.
func TestCrashLoopLayouts(t *testing.T) {
	for _, lc := range []struct {
		name   string
		layout lsmssd.Layout
	}{
		{"tiering", lsmssd.Tiering},
		{"lazy", lsmssd.LazyLeveling},
	} {
		t.Run(lc.name, func(t *testing.T) {
			report, err := crashloop.Run(crashloop.Config{
				Dir:       t.TempDir(),
				Iters:     25,
				MaxOps:    60,
				Seed:      4,
				KeySpace:  256,
				Sync:      lsmssd.SyncEvery,
				CrashProb: 0.9,
				TornTail:  true,
				Paranoid:  true,
				Layout:    lc.layout,
				TierRuns:  3,
			})
			t.Log(report)
			if err != nil {
				t.Fatal(err)
			}
			if report.LostFrames != 0 {
				t.Fatalf("SyncEvery lost %d acked frames", report.LostFrames)
			}
			if report.Crashes == 0 {
				t.Error("no power cuts exercised")
			}
		})
	}
}

// TestWALRecoveryBasic pins the direct story: put, crash, reopen, and the
// acked writes are back, with Stats reporting the replay.
func TestWALRecoveryBasic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	db, err := lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatalf("crash teardown: %v", err)
	}

	db, err = lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	s := db.Stats()
	if !s.WAL.Recovery.Recovered || s.WAL.Recovery.Frames == 0 {
		t.Fatalf("recovery stats report no replay: %+v", s.WAL.Recovery)
	}
	for i := uint64(0); i < 300; i++ {
		v, ok, err := db.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if ok {
				t.Fatalf("deleted key 7 resurrected with %q", v)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d: got (%q, %v) after recovery", i, v, ok)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailTruncated: garbage appended to the last segment (a frame
// torn mid-write by the power cut) is cleanly truncated, the intact
// prefix replays, and the log is appendable again.
func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	db, err := lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := db.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: half a frame of garbage at the end of the newest
	// segment.
	segs, err := filepath.Glob(path + ".wal.*")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments found: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x13, 0x37, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer db.Close()
	s := db.Stats()
	if s.WAL.Recovery.TornBytes == 0 {
		t.Fatalf("recovery reports no torn bytes: %+v", s.WAL.Recovery)
	}
	for i := uint64(0); i < 50; i++ {
		if _, ok, err := db.Get(i); err != nil || !ok {
			t.Fatalf("key %d lost to the torn tail (ok=%v, err=%v)", i, ok, err)
		}
	}
	// The truncated log must accept appends again.
	if err := db.Put(1000, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWALDisabledLeftoverFramesRefused: opening with the WAL off while
// unreplayed frames sit on disk must refuse loudly instead of silently
// dropping acked writes.
func TestWALDisabledLeftoverFramesRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	db, err := lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	if _, err := lsmssd.Open(fileOpts(path)); err == nil {
		t.Fatal("open with WAL disabled succeeded despite unreplayed frames")
	} else if !strings.Contains(err.Error(), "write-ahead log") {
		t.Fatalf("refusal does not name the WAL: %v", err)
	}

	// With the WAL enabled the same store recovers fine.
	db, err = lsmssd.Open(walOpts(path, lsmssd.SyncEvery))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// After a clean close (checkpoint covers everything) the WAL-off open
	// still refuses while segment files remain, and works once they are
	// gone.
	segs, err := filepath.Glob(path + ".wal.*")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	db, err = lsmssd.Open(fileOpts(path))
	if err != nil {
		t.Fatalf("open with WAL disabled after removing segments: %v", err)
	}
	if _, ok, err := db.Get(3); err != nil || !ok {
		t.Fatalf("checkpointed key lost (ok=%v, err=%v)", ok, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptBlockSurfacesErrCorrupt: a bit flip in the device file is
// detected by the per-block checksum and surfaces as lsmssd.ErrCorrupt
// through the public read path, never as silently wrong data.
func TestCorruptBlockSurfacesErrCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	opts := fileOpts(path)
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := db.Put(i, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte early in every block slot (offset 11 is well inside
	// the encoded record area of any non-empty block).
	const slot = 4096 + 8 // BlockSize + the checksum trailer
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	for off := int64(11); off < fi.Size(); off += slot {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xff
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sawCorrupt := false
	for i := uint64(0); i < 2000 && !sawCorrupt; i += 17 {
		_, _, err := db.Get(i)
		if err != nil {
			if !errors.Is(err, lsmssd.ErrCorrupt) {
				t.Fatalf("corruption surfaced as %v, not ErrCorrupt", err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no Get surfaced the corrupted blocks")
	}
}

// TestWALKeepsBlocksWrittenIdentical pins the paper-fidelity guarantee:
// the WAL lives entirely outside the block device, so enabling it must
// not change the experiment's primary metric by a single block.
func TestWALKeepsBlocksWrittenIdentical(t *testing.T) {
	workload := func(db *lsmssd.DB) {
		t.Helper()
		for i := uint64(0); i < 3000; i++ {
			if err := db.Put(i*7%1024, []byte("workload-value")); err != nil {
				t.Fatal(err)
			}
			if i%5 == 4 {
				if err := db.Delete(i % 512); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	mem, err := lsmssd.Open(lsmssd.Options{RecordsPerBlock: 16, MemtableBlocks: 4, Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	workload(mem)
	memWrites := mem.Stats().BlocksWritten
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "store.db")
	walDB, err := lsmssd.Open(walOpts(path, lsmssd.SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	workload(walDB)
	walWrites := walDB.Stats().BlocksWritten
	if err := walDB.Close(); err != nil {
		t.Fatal(err)
	}

	if memWrites != walWrites {
		t.Fatalf("BlocksWritten diverged: %d without WAL, %d with WAL", memWrites, walWrites)
	}
}
