package lsmssd_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lsmssd"
)

func fileOptions(t *testing.T) lsmssd.Options {
	t.Helper()
	opts := smallOptions()
	opts.Path = filepath.Join(t.TempDir(), "db.blk")
	opts.PayloadHint = 32
	return opts
}

func TestPersistenceRoundTrip(t *testing.T) {
	opts := fileOptions(t)
	model := map[uint64]string{}

	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(800))
		if rng.Intn(4) == 0 {
			db.Delete(k)
			delete(model, k)
		} else {
			v := fmt.Sprint(i)
			db.Put(k, []byte(v))
			model[k] = v
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the same options: everything must come back, including
	// records that were still in the memtable at Close.
	db2, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 800; k++ {
		v, ok, err := db2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := model[k]
		if ok != wantOK || (ok && string(v) != want) {
			t.Fatalf("Get(%d) = %q,%v, want %q,%v", k, v, ok, want, wantOK)
		}
	}
	// And it keeps working (allocator state was rebuilt correctly).
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(800))
		if err := db2.Put(k, []byte("post-reopen")); err != nil {
			t.Fatal(err)
		}
		model[k] = "post-reopen"
	}
	if err := db2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointThenCrash(t *testing.T) {
	opts := fileOptions(t)
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k++ {
		db.Put(k, []byte("pre"))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes are lost on crash (no Close); keys die in
	// the memtable, but merged state up to the checkpoint is intact.
	for k := uint64(1000); k < 1100; k++ {
		db.Put(k, []byte("post"))
	}
	// Simulate a crash: drop the handle without Close.
	db = nil

	db2, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k := uint64(0); k < 300; k++ {
		if _, ok, _ := db2.Get(k); !ok {
			t.Fatalf("checkpointed key %d lost", k)
		}
	}
	if err := db2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenConfigMismatch(t *testing.T) {
	opts := fileOptions(t)
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Put(1, []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Gamma = 8 // different geometry
	if _, err := lsmssd.Open(bad); err == nil {
		t.Error("reopen with mismatched options succeeded")
	}
	// Policy changes ARE allowed (the paper's whole point): reopen with
	// a different merge policy.
	alt := opts
	alt.MergePolicy = lsmssd.Full
	db2, err := lsmssd.Open(alt)
	if err != nil {
		t.Fatalf("policy change on reopen rejected: %v", err)
	}
	defer db2.Close()
	if v, ok, _ := db2.Get(1); !ok || string(v) != "v" {
		t.Error("data lost across policy change")
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	opts := fileOptions(t)
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		db.Put(k, []byte("v"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mpath := opts.Path + ".manifest"
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(mpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lsmssd.Open(opts); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestCheckpointInMemoryNoop(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint errored: %v", err)
	}
}

func TestPersistenceDeterministicAllocator(t *testing.T) {
	// Freed slots must be recycled after reopen: grow, close, reopen,
	// churn, and confirm the file does not balloon past the high-water
	// mark times the block size by more than one block.
	opts := fileOptions(t)
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		db.Put(k, []byte("v"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	info1, _ := os.Stat(opts.Path)

	db2, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(2000))
		if rng.Intn(2) == 0 {
			db2.Put(k, []byte("w"))
		} else {
			db2.Delete(k)
		}
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	info2, _ := os.Stat(opts.Path)
	if info2.Size() > info1.Size()*3 {
		t.Errorf("file grew from %d to %d bytes; allocator not recycling", info1.Size(), info2.Size())
	}
}

func TestBackgroundCloseMidCascade(t *testing.T) {
	// Close can land while the background scheduler is mid-cascade: Stop
	// finishes the in-flight step and abandons the rest. Reopen must
	// complete the interrupted cascade (Restore drains it) and hand back
	// a tree that validates with every record intact.
	opts := fileOptions(t)
	opts.CompactionMode = lsmssd.BackgroundCompaction
	opts.SlowdownTrigger = 4
	opts.StopTrigger = 8

	model := map[uint64]string{}
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Burst writes then immediate Close, so the backlog is still draining
	// when shutdown starts.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(600))
		v := fmt.Sprint(i)
		if err := db.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Validate(); err != nil {
		t.Fatalf("reopened tree fails validation after mid-cascade Close: %v", err)
	}
	for k, want := range model {
		v, ok, err := db2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != want {
			t.Fatalf("Get(%d) after reopen = %q, %v; want %q", k, v, ok, want)
		}
	}
}
