package lsmssd_test

// End-to-end coverage of the non-leveling layouts: tiering and lazy
// leveling must serve the same reads as leveling for the same history,
// survive checkpoint/reopen cycles, hold the structural invariants under
// Paranoid, and be refused on a layout-skewed reopen.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"lsmssd"
)

func layoutOptions(l lsmssd.Layout, t int) lsmssd.Options {
	o := smallOptions()
	o.Layout = l
	o.TierRuns = t
	o.Paranoid = true
	return o
}

// TestLayoutsAgree drives an identical mixed workload (puts, overwrites,
// deletes) through every layout and requires identical read results —
// the layout axis changes write schedules, never visible contents.
func TestLayoutsAgree(t *testing.T) {
	layouts := []struct {
		layout lsmssd.Layout
		runs   int
	}{
		{lsmssd.Leveling, 0},
		{lsmssd.Tiering, 2},
		{lsmssd.Tiering, 4},
		{lsmssd.LazyLeveling, 3},
	}
	type result struct {
		vals map[uint64]string
		scan string
	}
	var results []result
	for _, lc := range layouts {
		name := fmt.Sprintf("%v-T%d", lc.layout, lc.runs)
		db, err := lsmssd.Open(layoutOptions(lc.layout, lc.runs))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k := uint64(0); k < 1200; k++ {
			if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				t.Fatalf("%s: put %d: %v", name, k, err)
			}
		}
		for k := uint64(0); k < 1200; k += 5 {
			if err := db.Delete(k); err != nil {
				t.Fatalf("%s: delete %d: %v", name, k, err)
			}
		}
		for k := uint64(0); k < 1200; k += 7 {
			if err := db.Put(k, []byte(fmt.Sprintf("w%d", k))); err != nil {
				t.Fatalf("%s: rewrite %d: %v", name, k, err)
			}
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
		r := result{vals: make(map[uint64]string)}
		for k := uint64(0); k < 1200; k++ {
			v, ok, err := db.Get(k)
			if err != nil {
				t.Fatalf("%s: get %d: %v", name, k, err)
			}
			if ok {
				r.vals[k] = string(v)
			}
		}
		var sb strings.Builder
		if err := db.Scan(0, 1199, func(k uint64, v []byte) bool {
			fmt.Fprintf(&sb, "%d=%s;", k, v)
			return true
		}); err != nil {
			t.Fatalf("%s: scan: %v", name, err)
		}
		r.scan = sb.String()
		if err := db.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i].vals) != len(results[0].vals) {
			t.Fatalf("layout %d: %d live keys, leveling has %d",
				i, len(results[i].vals), len(results[0].vals))
		}
		for k, v := range results[0].vals {
			if results[i].vals[k] != v {
				t.Fatalf("layout %d: key %d = %q, leveling has %q", i, k, results[i].vals[k], v)
			}
		}
		if results[i].scan != results[0].scan {
			t.Fatalf("layout %d: scan output diverges from leveling", i)
		}
	}
}

// TestTieredLevelsHoldMultipleRuns asserts the tiering layout actually
// tiers: some level must report more than one sorted run at some point,
// and no level may ever exceed the T budget at rest.
func TestTieredLevelsHoldMultipleRuns(t *testing.T) {
	const tierRuns = 3
	db, err := lsmssd.Open(layoutOptions(lsmssd.Tiering, tierRuns))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sawMulti := false
	for k := uint64(0); k < 2000; k++ {
		if err := db.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if k%50 != 0 {
			continue
		}
		for _, lv := range db.Stats().Levels {
			if lv.Runs > 1 {
				sawMulti = true
			}
			if lv.Runs > tierRuns {
				t.Fatalf("L%d holds %d runs at rest, budget is %d", lv.Level, lv.Runs, tierRuns)
			}
		}
	}
	if !sawMulti {
		t.Fatal("tiering never produced a level with more than one sorted run")
	}
}

// TestLazyLevelingBottomStaysLeveled asserts lazy leveling's contract:
// the bottom level always holds exactly one run while some upper level
// tiers.
func TestLazyLevelingBottomStaysLeveled(t *testing.T) {
	db, err := lsmssd.Open(layoutOptions(lsmssd.LazyLeveling, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sawMulti := false
	for k := uint64(0); k < 3000; k++ {
		if err := db.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if k%100 != 0 {
			continue
		}
		levels := db.Stats().Levels
		if len(levels) == 0 {
			continue
		}
		for _, lv := range levels[:len(levels)-1] {
			if lv.Runs > 1 {
				sawMulti = true
			}
		}
		if bottom := levels[len(levels)-1]; bottom.Runs != 1 {
			t.Fatalf("lazy leveling bottom L%d holds %d runs, want 1", bottom.Level, bottom.Runs)
		}
	}
	if len(db.Stats().Levels) < 2 {
		t.Fatal("workload too small: tree never grew past one storage level")
	}
	if !sawMulti {
		t.Fatal("lazy leveling never tiered an upper level")
	}
}

// TestTieringPersistence checkpoints a tiered store mid-accumulation and
// reopens it: the manifest must carry the multi-run structure and the
// reopened store must serve the same data.
func TestTieringPersistence(t *testing.T) {
	for _, lc := range []struct {
		name   string
		layout lsmssd.Layout
	}{
		{"tiering", lsmssd.Tiering},
		{"lazy", lsmssd.LazyLeveling},
	} {
		t.Run(lc.name, func(t *testing.T) {
			opts := layoutOptions(lc.layout, 3)
			opts.Path = filepath.Join(t.TempDir(), "db.blk")
			opts.PayloadHint = 32
			db, err := lsmssd.Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 900; k++ {
				if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(0); k < 900; k += 4 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db, err = lsmssd.Open(opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db.Close()
			if err := db.Validate(); err != nil {
				t.Fatalf("reopened state: %v", err)
			}
			for k := uint64(0); k < 900; k++ {
				v, ok, err := db.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if k%4 == 0 {
					if ok {
						t.Fatalf("deleted key %d visible after reopen", k)
					}
					continue
				}
				if !ok || string(v) != fmt.Sprintf("v%d", k) {
					t.Fatalf("Get(%d) = %q,%v after reopen", k, v, ok)
				}
			}
		})
	}
}

// TestLayoutMismatchRefused pins the reopen contract: a store written
// under one layout must refuse to open under another, naming both.
func TestLayoutMismatchRefused(t *testing.T) {
	opts := layoutOptions(lsmssd.Tiering, 3)
	opts.Path = filepath.Join(t.TempDir(), "db.blk")
	opts.PayloadHint = 32
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 400; k++ {
		if err := db.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cases := map[string]lsmssd.Options{}
	lev := opts
	lev.Layout, lev.TierRuns = lsmssd.Leveling, 0
	cases["leveling"] = lev
	lazy := opts
	lazy.Layout = lsmssd.LazyLeveling
	cases["lazy"] = lazy
	runs := opts
	runs.TierRuns = 5
	cases["tier-runs-skew"] = runs
	for name, o := range cases {
		if _, err := lsmssd.Open(o); err == nil || !strings.Contains(err.Error(), "layout") {
			t.Errorf("%s: reopen error = %v, want layout mismatch", name, err)
		}
	}

	// The matching layout still opens.
	db, err = lsmssd.Open(opts)
	if err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutValidate covers the new options' validation errors.
func TestLayoutValidate(t *testing.T) {
	bad := lsmssd.Options{Layout: lsmssd.Layout(9)}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "Layout") {
		t.Errorf("Layout 9: Validate = %v", err)
	}
	bad = lsmssd.Options{TierRuns: 1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "TierRuns") {
		t.Errorf("TierRuns 1: Validate = %v", err)
	}
	if err := (lsmssd.Options{Layout: lsmssd.Tiering, TierRuns: 2}).Validate(); err != nil {
		t.Errorf("valid tiering rejected: %v", err)
	}
	for l, want := range map[lsmssd.Layout]string{
		lsmssd.Leveling:     "leveling",
		lsmssd.Tiering:      "tiering",
		lsmssd.LazyLeveling: "lazy",
	} {
		if got := l.String(); got != want {
			t.Errorf("Layout(%d).String() = %q, want %q", l, got, want)
		}
	}
}
