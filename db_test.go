package lsmssd_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"lsmssd"
)

func smallOptions() lsmssd.Options {
	return lsmssd.Options{
		RecordsPerBlock: 8,
		MemtableBlocks:  2,
		Gamma:           4,
		Delta:           0.25,
		CacheBlocks:     -1,
	}
}

func TestOpenDefaultsAndClose(t *testing.T) {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get(1)
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetDeleteScan(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 500; k++ {
		if err := db.Put(k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k += 3 {
		if err := db.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k++ {
		v, ok, err := db.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if k%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d visible", k)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprint(k) {
			t.Fatalf("Get(%d) = %q,%v", k, v, ok)
		}
	}
	var seen []uint64
	if err := db.Scan(100, 110, func(k uint64, v []byte) bool {
		seen = append(seen, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 101, 103, 104, 106, 107, 109, 110}
	// 102, 105, 108 are multiples of 3 and deleted.
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", seen, want)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedDB(t *testing.T) {
	opts := smallOptions()
	opts.Path = filepath.Join(t.TempDir(), "db.blk")
	opts.PayloadHint = 32
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 300; k++ {
		if err := db.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 300; k++ {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != "payload" {
			t.Fatalf("Get(%d) = %q,%v,%v", k, v, ok, err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPoliciesAgree(t *testing.T) {
	policies := []lsmssd.Policy{
		lsmssd.Full, lsmssd.RR, lsmssd.ChooseBest, lsmssd.TestMixed, lsmssd.Mixed,
	}
	for _, pol := range policies {
		for _, disableP := range []bool{false, true} {
			name := pol.String()
			if disableP {
				name += "-P"
			}
			t.Run(name, func(t *testing.T) {
				opts := smallOptions()
				opts.MergePolicy = pol
				opts.DisablePreserve = disableP
				// Paranoid audits the paper's invariants after every
				// merge; a policy violating a waste constraint fails the
				// offending request, not just the final Validate.
				opts.Paranoid = true
				db, err := lsmssd.Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				model := map[uint64]string{}
				rng := rand.New(rand.NewSource(11))
				for i := 0; i < 4000; i++ {
					k := uint64(rng.Intn(400))
					if rng.Intn(4) == 0 {
						if err := db.Delete(k); err != nil {
							t.Fatal(err)
						}
						delete(model, k)
					} else {
						v := fmt.Sprint(i)
						if err := db.Put(k, []byte(v)); err != nil {
							t.Fatal(err)
						}
						model[k] = v
					}
				}
				if err := db.Validate(); err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < 400; k++ {
					v, ok, _ := db.Get(k)
					want, wantOK := model[k]
					if ok != wantOK || (ok && string(v) != want) {
						t.Fatalf("Get(%d) = %q,%v, want %q,%v", k, v, ok, want, wantOK)
					}
				}
			})
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 200; k++ {
		db.Put(k, []byte("v"))
	}
	s := db.Stats()
	if s.BlocksWritten == 0 || s.Inserts != 200 || s.Height < 2 {
		t.Errorf("stats = %+v", s)
	}
	if len(s.Levels) != s.Height-1 {
		t.Errorf("levels %d vs height %d", len(s.Levels), s.Height)
	}
	var sum int64
	for _, ls := range s.Levels {
		sum += ls.BlocksWritten
	}
	if sum != s.BlocksWritten {
		t.Errorf("per-level writes %d != device writes %d", sum, s.BlocksWritten)
	}
	db.ResetIOStats()
	s = db.Stats()
	if s.BlocksWritten != 0 || s.BlocksRead != 0 {
		t.Error("ResetIOStats did not zero traffic")
	}
	if s.LiveBlocks == 0 {
		t.Error("ResetIOStats clobbered live-block accounting")
	}
}

func TestHistogram(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 1000; k += 2 {
		db.Put(k, []byte("v"))
	}
	h, err := db.Histogram(1, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 10 {
		t.Fatalf("histogram has %d buckets", len(h))
	}
	total := 0.0
	for _, f := range h {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("histogram sums to %v", total)
	}
	if _, err := db.Histogram(99, 1000, 10); err == nil {
		t.Error("histogram of absent level succeeded")
	}
}

func TestTuneMixedRequiresMixed(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.TuneMixed(func() (lsmssd.Request, bool) {
		return lsmssd.Request{}, false
	}, lsmssd.TuneOptions{})
	if err != lsmssd.ErrNotMixed {
		t.Errorf("err = %v, want ErrNotMixed", err)
	}
}

func TestTuneMixedLearnsParameters(t *testing.T) {
	opts := smallOptions()
	opts.MergePolicy = lsmssd.Mixed
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// A steady-state uniform workload: fill to ~200 keys, then hold.
	rng := rand.New(rand.NewSource(3))
	live := map[uint64]bool{}
	var keys []uint64
	next := func() (lsmssd.Request, bool) {
		if len(live) < 200 || rng.Intn(2) == 0 {
			for {
				k := rng.Uint64() % (1 << 40)
				if live[k] {
					continue
				}
				live[k] = true
				keys = append(keys, k)
				return lsmssd.Request{Key: k, Value: []byte("tune-payload-xx")}, true
			}
		}
		for {
			k := keys[rng.Intn(len(keys))]
			if !live[k] {
				continue
			}
			delete(live, k)
			return lsmssd.Request{Delete: true, Key: k}, true
		}
	}
	// Preload via the same stream.
	for i := 0; i < 400; i++ {
		r, _ := next()
		if r.Delete {
			db.Delete(r.Key)
		} else {
			db.Put(r.Key, r.Value)
		}
	}
	res, err := db.TuneMixed(next, lsmssd.TuneOptions{
		BetaWindowBytes:  1 << 17,
		MaxBytesPerCycle: 1 << 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	taus, beta, ok := db.MixedParams()
	if !ok {
		t.Fatal("MixedParams not available")
	}
	if beta != res.Beta {
		t.Error("applied β differs from result")
	}
	for lvl, tau := range res.Taus {
		if taus[lvl] != tau {
			t.Errorf("applied τ%d = %v, result %v", lvl, taus[lvl], tau)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("tuned: taus=%v beta=%v in %d measurements", res.Taus, res.Beta, res.Measurements)
}

func TestConcurrentAccess(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				k := uint64(g*1000 + rng.Intn(500))
				switch rng.Intn(3) {
				case 0:
					db.Put(k, []byte{byte(i)})
				case 1:
					db.Delete(k)
				default:
					db.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[lsmssd.Policy]string{
		lsmssd.Full: "Full", lsmssd.RR: "RR", lsmssd.ChooseBest: "ChooseBest",
		lsmssd.TestMixed: "TestMixed", lsmssd.Mixed: "Mixed", lsmssd.Policy(99): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

// Property: the public API matches a map model under random operations and
// random (valid) option combinations.
func TestQuickDBModel(t *testing.T) {
	f := func(seed int64, polRaw uint8, bloom bool) bool {
		opts := smallOptions()
		opts.MergePolicy = lsmssd.Policy(int(polRaw) % 5)
		opts.Seed = seed
		if bloom {
			opts.BloomBitsPerKey = 8
		}
		db, err := lsmssd.Open(opts)
		if err != nil {
			return false
		}
		defer db.Close()
		rng := rand.New(rand.NewSource(seed))
		model := map[uint64]byte{}
		for i := 0; i < 1500; i++ {
			k := uint64(rng.Intn(200))
			if rng.Intn(3) == 0 {
				if db.Delete(k) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := byte(rng.Intn(256))
				if db.Put(k, []byte{v}) != nil {
					return false
				}
				model[k] = v
			}
		}
		if db.Validate() != nil {
			return false
		}
		for k := uint64(0); k < 200; k++ {
			v, ok, err := db.Get(k)
			if err != nil {
				return false
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && v[0] != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	// Zero options must produce the paper's defaults; explicit values
	// must survive.
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	// CacheBlocks: 0 means default (enabled), negative disables.
	for _, cb := range []int{0, -1, 64} {
		db, err := lsmssd.Open(lsmssd.Options{CacheBlocks: cb})
		if err != nil {
			t.Fatalf("CacheBlocks=%d: %v", cb, err)
		}
		db.Close()
	}
	// Bad file path surfaces at Open.
	if _, err := lsmssd.Open(lsmssd.Options{Path: "/nonexistent-dir/x.blk"}); err == nil {
		t.Error("bad path accepted")
	}
	// Invalid derived config surfaces at Open.
	if _, err := lsmssd.Open(lsmssd.Options{Gamma: 1}); err == nil {
		t.Error("Gamma=1 accepted")
	}
}

func TestTuneMixedStalledGenerator(t *testing.T) {
	opts := smallOptions()
	opts.MergePolicy = lsmssd.Mixed
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 300; k++ {
		db.Put(k, []byte("v"))
	}
	_, err = db.TuneMixed(func() (lsmssd.Request, bool) {
		return lsmssd.Request{}, false // immediately exhausted
	}, lsmssd.TuneOptions{BetaWindowBytes: 1 << 16})
	if err == nil {
		t.Error("tuning with a stalled generator succeeded")
	}
}

func TestForceGrowPublic(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 200; k++ {
		db.Put(k, []byte("v"))
	}
	h := db.Stats().Height
	db.ForceGrow()
	if got := db.Stats().Height; got != h+1 {
		t.Errorf("height = %d after ForceGrow, want %d", got, h+1)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if _, ok, _ := db.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestMixedParamsNonMixed(t *testing.T) {
	db, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, _, ok := db.MixedParams(); ok {
		t.Error("MixedParams reported ok for ChooseBest policy")
	}
}

func TestMixedPresetParams(t *testing.T) {
	opts := smallOptions()
	opts.MergePolicy = lsmssd.Mixed
	opts.MixedTaus = map[int]float64{2: 0.3}
	opts.MixedBeta = true
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 400; k++ {
		db.Put(k, []byte("v"))
	}
	taus, beta, ok := db.MixedParams()
	if !ok || !beta {
		t.Fatalf("params = %v,%v,%v", taus, beta, ok)
	}
	if db.Stats().Height >= 4 && taus[2] != 0.3 {
		t.Errorf("tau2 = %v, want 0.3", taus[2])
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}
