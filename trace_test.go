package lsmssd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lsmssd/internal/obs"
)

// traceOptions is obsOptions plus full tracing: every op is phase-traced
// (slow threshold 1ns captures all of them) and every op is sampled.
func traceOptions() Options {
	o := obsOptions()
	o.Metrics = true
	o.TraceSampleRate = 1
	o.SlowOpThreshold = 1
	return o
}

// TestSpanSumEqualsLatencyAtDB is the tentpole acceptance property driven
// through the real engine: for every operation kind — Put and Delete
// (WAL, memtable, cascade), batch Apply, Get, Scan — the captured span's
// phase durations sum exactly to the op's total latency, and the phases
// the workload must exercise actually show up.
func TestSpanSumEqualsLatencyAtDB(t *testing.T) {
	opts := traceOptions()
	opts.Path = filepath.Join(t.TempDir(), "store.blk")
	opts.WAL = WALOptions{Enabled: true, Sync: SyncEvery}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := uint64(0); i < 400; i++ {
		if err := db.Put(i, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(3); err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch()
	for i := uint64(500); i < 520; i++ {
		b.Put(i, []byte("batched"))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get(7); err != nil {
		t.Fatal(err)
	}
	if err := db.Scan(0, 100, func(uint64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}

	evs := db.SlowOps()
	if len(evs) == 0 {
		t.Fatal("slow threshold 1ns captured nothing")
	}
	seen := map[string]bool{}
	var phases [obs.NumPhases]time.Duration
	for _, ev := range evs {
		if ev.PhaseSum() != ev.Total {
			t.Errorf("%s span: phase sum %v != total %v (phases %v)", ev.Op, ev.PhaseSum(), ev.Total, ev.Phases)
		}
		if !ev.Slow {
			t.Errorf("%s event in the slow ring without the Slow flag", ev.Op)
		}
		seen[ev.Op.String()] = true
		for p, d := range ev.Phases {
			phases[p] += d
		}
		switch ev.Op {
		case obs.OpPut, obs.OpDelete, obs.OpApply:
			if ev.Shard != 0 {
				t.Errorf("%s span attributed to shard %d on a 1-shard DB", ev.Op, ev.Shard)
			}
			if ev.Phases[obs.PhaseWALAppend]+ev.Phases[obs.PhaseWALSync] <= 0 {
				t.Errorf("%s span has no WAL time despite SyncEvery: %v", ev.Op, ev.Phases)
			}
		case obs.OpScan:
			if ev.Shard != -1 {
				t.Errorf("scan span carries shard %d, want -1 (multi-shard)", ev.Shard)
			}
		}
	}
	for _, op := range []string{"put", "delete", "apply", "get", "scan"} {
		if !seen[op] {
			t.Errorf("no span captured for %s (ring may be too small for the workload tail)", op)
		}
	}
	// The workload merges under sync compaction and reads from a
	// cache-less device, so cascade and memtable time must be attributed.
	if phases[obs.PhaseMemtable] <= 0 || phases[obs.PhaseCascade] <= 0 {
		t.Errorf("write phases unattributed: memtable=%v cascade=%v", phases[obs.PhaseMemtable], phases[obs.PhaseCascade])
	}
}

// TestSampledSpansOnBus checks the event-bus route: with 1-in-2 sampling
// and no slow capture, exactly half the puts publish a SpanEvent.
func TestSampledSpansOnBus(t *testing.T) {
	opts := obsOptions()
	opts.TraceSampleRate = 2
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var spans []SpanEvent
	cancel := db.Subscribe(func(ev Event) {
		if se, ok := ev.(SpanEvent); ok {
			spans = append(spans, se)
		}
	})
	defer cancel()

	for i := uint64(0); i < 10; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	db.bus.Flush()
	if len(spans) != 5 {
		t.Fatalf("published %d span events for 10 puts at rate 2, want 5", len(spans))
	}
	for _, se := range spans {
		if !se.Sampled || se.Slow {
			t.Errorf("span flags sampled=%v slow=%v, want sampled only", se.Sampled, se.Slow)
		}
		if se.PhaseSum() != se.Total {
			t.Errorf("published span sum %v != total %v", se.PhaseSum(), se.Total)
		}
	}
	if len(db.SlowOps()) != 0 {
		t.Error("slow ring populated without a slow threshold")
	}
}

// TestTracingDisabledAddsNoAllocs pins the disabled-path acceptance
// criterion end to end: on a default DB (no Metrics, no tracing), Get of
// a memtable-resident key allocates nothing — the span plumbing adds no
// allocation to the hot read path.
func TestTracingDisabledAddsNoAllocs(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put(42, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok, err := db.Get(42); !ok || err != nil {
			t.Fatal("lost the key")
		}
	})
	if allocs != 0 {
		t.Errorf("Get allocates %.1f per op with tracing disabled, want 0", allocs)
	}
	if sp := db.tracer.Start(obs.OpGet, 0); sp != nil {
		t.Error("default DB's tracer handed out a span")
	}
}

// TestTimelineAndSlowEndpoints drives a sharded DB with a fast flight
// recorder and checks both new HTTP surfaces: /debug/lsm/timeline decodes
// into per-shard sample series whose op counts cover the workload, and
// /debug/lsm/slow serves the captured spans.
func TestTimelineAndSlowEndpoints(t *testing.T) {
	opts := traceOptions()
	opts.Shards = 2
	opts.MetricsAddr = "127.0.0.1:0"
	opts.TimelineInterval = 10 * time.Millisecond
	opts.TimelineCapacity = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := uint64(0); i < 600; i++ {
		if err := db.Put(i, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.Get(11); err != nil {
		t.Fatal(err)
	}
	// Let the recorder tick a few times over the completed workload.
	deadline := time.Now().Add(2 * time.Second)
	var ticks int
	for time.Now().Before(deadline) {
		if tl := db.Timeline(); len(tl) == 2 && len(tl[0]) >= 2 {
			ticks = len(tl[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ticks < 2 {
		t.Fatal("flight recorder produced no samples")
	}

	addr := db.MetricsAddr()
	resp, err := http.Get("http://" + addr + "/debug/lsm/timeline")
	if err != nil {
		t.Fatal(err)
	}
	var tl [][]TimelineSample
	err = json.NewDecoder(resp.Body).Decode(&tl)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/lsm/timeline: %v", err)
	}
	if len(tl) != 2 {
		t.Fatalf("timeline has %d shard series, want 2", len(tl))
	}
	var ops int64
	for sh, samples := range tl {
		for i, s := range samples {
			if s.Shard != sh {
				t.Errorf("sample in series %d claims shard %d", sh, s.Shard)
			}
			if i > 0 && s.Seq != samples[i-1].Seq+1 {
				t.Errorf("shard %d seq jumps %d → %d", sh, samples[i-1].Seq, s.Seq)
			}
			ops += s.Ops
		}
	}
	if ops != 601 {
		t.Errorf("timeline accounts for %d ops, want 601 (600 puts + 1 get)", ops)
	}

	resp, err = http.Get("http://" + addr + "/debug/lsm/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow []struct {
		Op     int   `json:"Op"`
		Total  int64 `json:"Total"`
		Phases []int64
	}
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/lsm/slow: %v", err)
	}
	if len(slow) == 0 {
		t.Fatal("/debug/lsm/slow is empty despite a 1ns threshold")
	}
	for _, ev := range slow {
		var sum int64
		for _, d := range ev.Phases {
			sum += d
		}
		if sum != ev.Total {
			t.Errorf("served slow span sum %d != total %d", sum, ev.Total)
		}
	}

	// The scrape gains the timeline gauges and the phase histogram.
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"lsmssd_timeline_ops_per_sec{shard=\"0\"}",
		"lsmssd_timeline_l0_blocks{shard=\"1\"}",
		"lsmssd_phase_duration_seconds_bucket{phase=\"memtable\",le=",
		"lsmssd_shard_op_duration_seconds_count{shard=\"0\",op=\"put\"}",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// TestMetricsWithoutHTTP checks the Options.Metrics satellite: latency
// recording and the flight recorder run with no MetricsAddr, per-shard
// latencies surface under Stats.Shards, and their counts sum to the
// aggregate.
func TestMetricsWithoutHTTP(t *testing.T) {
	opts := obsOptions()
	opts.Metrics = true
	opts.Shards = 4
	opts.TimelineInterval = 5 * time.Millisecond
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.MetricsAddr() != "" {
		t.Fatal("Metrics alone must not serve HTTP")
	}

	const puts = 400
	for i := uint64(0); i < puts; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	s := db.Stats()
	var aggPut, shardPut int64
	for _, l := range s.Latencies {
		if l.Op == "put" {
			aggPut = l.Count
		}
	}
	perShardSeen := 0
	for _, ss := range s.Shards {
		for _, l := range ss.Latencies {
			if l.Op == "put" {
				shardPut += l.Count
				perShardSeen++
			}
		}
	}
	if aggPut != puts {
		t.Errorf("aggregate put count = %d, want %d", aggPut, puts)
	}
	if shardPut != aggPut {
		t.Errorf("per-shard put counts sum to %d, aggregate says %d", shardPut, aggPut)
	}
	if perShardSeen != 4 {
		t.Errorf("%d shards report put latencies, want all 4 (keys 0..399 hit every shard)", perShardSeen)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if tl := db.Timeline(); len(tl) == 4 && len(tl[0]) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("flight recorder idle despite Options.Metrics")
}

// TestTracingPreservesBlockAccounting pins the other half of the
// acceptance criterion: full tracing must not perturb the paper's cost
// metric. The same workload produces byte-identical BlocksWritten with
// tracing saturated and with everything off.
func TestTracingPreservesBlockAccounting(t *testing.T) {
	run := func(opts Options) int64 {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 3000; i++ {
			k := uint64(i*2654435761) % 50_000
			if err := db.Put(k, []byte("workload")); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats().BlocksWritten
	}
	plain := run(obsOptions())
	traced := run(traceOptions())
	if plain != traced {
		t.Fatalf("BlocksWritten diverges under tracing: plain=%d traced=%d", plain, traced)
	}
	if plain == 0 {
		t.Fatal("workload wrote nothing; comparison vacuous")
	}
}

// TestResetCoversShardLatenciesAndPhases extends the uniform-window
// guarantee to the new series: ResetIOStats zeroes the per-shard latency
// sets and the tracer's phase histograms together.
func TestResetCoversShardLatenciesAndPhases(t *testing.T) {
	opts := traceOptions()
	opts.Shards = 2
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 200; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.Stats(); len(s.Latencies) == 0 || len(s.Shards[0].Latencies) == 0 {
		t.Fatal("warm-up recorded nothing")
	}
	if snap := db.tracer.PhaseSnapshot(0); snap[obs.PhaseMemtable].Count == 0 {
		t.Fatal("warm-up traced no memtable phases")
	}
	db.ResetIOStats()
	s := db.Stats()
	if len(s.Latencies) != 0 {
		t.Errorf("aggregate latencies survive reset: %+v", s.Latencies)
	}
	for _, ss := range s.Shards {
		if len(ss.Latencies) != 0 {
			t.Errorf("shard %d latencies survive reset: %+v", ss.Shard, ss.Latencies)
		}
	}
	for sh := 0; sh < 2; sh++ {
		if snap := db.tracer.PhaseSnapshot(sh); snap[obs.PhaseMemtable].Count != 0 {
			t.Errorf("shard %d phase histograms survive reset", sh)
		}
	}
}
