package lsmssd_test

import (
	"fmt"
	"log"

	"lsmssd"
)

func Example() {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put(7, []byte("seven"))
	v, ok, _ := db.Get(7)
	fmt.Println(string(v), ok)

	db.Delete(7)
	_, ok, _ = db.Get(7)
	fmt.Println(ok)
	// Output:
	// seven true
	// false
}

func ExampleDB_Scan() {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, k := range []uint64{30, 10, 20, 40} {
		db.Put(k, []byte{byte(k)})
	}
	db.Scan(10, 30, func(k uint64, _ []byte) bool {
		fmt.Println(k)
		return true
	})
	// Output:
	// 10
	// 20
	// 30
}

func ExampleOpen_policies() {
	// Each merge policy from the paper is one Options field away; the
	// "-P" variants disable block-preserving merges.
	for _, p := range []lsmssd.Policy{lsmssd.Full, lsmssd.RR, lsmssd.ChooseBest, lsmssd.Mixed} {
		db, err := lsmssd.Open(lsmssd.Options{MergePolicy: p, DisablePreserve: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p)
		db.Close()
	}
	// Output:
	// Full
	// RR
	// ChooseBest
	// Mixed
}

func ExampleDB_Stats() {
	db, err := lsmssd.Open(lsmssd.Options{
		RecordsPerBlock: 8,
		MemtableBlocks:  2,
		Gamma:           4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for k := uint64(0); k < 100; k++ {
		db.Put(k, []byte("v"))
	}
	s := db.Stats()
	fmt.Println(s.Inserts, s.Height >= 2, s.BlocksWritten > 0)
	// Output:
	// 100 true true
}
