package lsmssd

import (
	"errors"
	"strconv"

	"lsmssd/internal/health"
	"lsmssd/internal/obs"
)

// Event types re-exported from the internal observability layer. A sink
// registered with DB.Subscribe receives these; type-switch to consume:
//
//	cancel := db.Subscribe(func(ev lsmssd.Event) {
//		if m, ok := ev.(lsmssd.MergeEvent); ok {
//			log.Printf("merge L%d→L%d wrote %d blocks", m.From, m.To, m.TotalWrites())
//		}
//	})
//	defer cancel()
//
// Events are delivered asynchronously on a single dispatcher goroutine, in
// publication order. Construct these types only to test your own sinks;
// the engine is the producer.
type (
	// Event is the interface all observability events implement.
	Event = obs.Event
	// MergeEvent describes one executed merge (window choice, overlap,
	// preservation, repair cases, I/O and wall-clock cost).
	MergeEvent = obs.MergeEvent
	// FlushEvent describes one memtable drain.
	FlushEvent = obs.FlushEvent
	// GrowEvent records the tree gaining a storage level.
	GrowEvent = obs.GrowEvent
	// CacheEvent reports buffer-cache traffic deltas between merges.
	CacheEvent = obs.CacheEvent
	// WarnEvent is an operator-facing warning (e.g. waste-factor pressure).
	WarnEvent = obs.WarnEvent
	// RunEvent marks measurement-window boundaries in recorded traces.
	RunEvent = obs.RunEvent
	// StallEvent records a write that hit compaction backpressure (the
	// pacing sleep or the hard stall gate) under BackgroundCompaction.
	StallEvent = obs.StallEvent
	// WALEvent reports a write-ahead-log segment rotation or a
	// checkpoint-driven segment garbage collection.
	WALEvent = obs.WALEvent
	// RecoveryEvent summarizes the crash recovery Open performed (frames
	// replayed, torn tail truncated).
	RecoveryEvent = obs.RecoveryEvent
	// SpanEvent is one finished operation span: total wall time split
	// across engine phases (WAL append, fsync wait, stall wait, memtable,
	// cascade, Bloom, cache vs device reads, k-way merge), summing to the
	// total exactly. Published for sampled ops (Options.TraceSampleRate)
	// and every op over Options.SlowOpThreshold.
	SpanEvent = obs.SpanEvent
	// HealthEvent records one accepted shard health transition (the From,
	// To states, a machine-stable Cause tag, and the triggering error's
	// text). Every demotion and promotion publishes exactly one.
	HealthEvent = obs.HealthEvent
	// ScrubEvent summarizes one completed scrub pass over a shard's live
	// blocks (checked, corrupt, repaired, still-quarantined counts).
	ScrubEvent = obs.ScrubEvent
	// TimelineSample is one time bucket of one shard's flight-recorder
	// timeline; see DB.Timeline.
	TimelineSample = obs.TimelineSample
	// PhaseStat is one phase's latency summary inside a TimelineSample.
	PhaseStat = obs.PhaseStat
)

// Subscribe attaches sink to the DB's event bus and returns a cancel
// function. The sink runs on the bus's dispatcher goroutine, never on the
// engine's writer path; a slow sink causes events to be dropped (and
// counted), never a stalled merge. With no subscribers the engine
// constructs no events at all, so an unobserved DB's write counts are
// unaffected by the observability layer. Close delivers pending events
// before returning; cancel only stops future deliveries.
func (db *DB) Subscribe(sink func(Event)) (cancel func()) {
	return db.bus.Subscribe(obs.SinkFunc(sink))
}

// EventDrops returns the number of events discarded because sinks could
// not keep up with the engine (the bus never blocks the writer).
func (db *DB) EventDrops() int64 { return db.bus.Drops() }

// MetricsAddr returns the bound address of the observability endpoint
// ("host:port", with ephemeral ports resolved), or "" when
// Options.MetricsAddr was not set.
func (db *DB) MetricsAddr() string {
	if db.metrics == nil {
		return ""
	}
	return db.metrics.Addr()
}

// startObs finishes Open: it starts the flight recorder when
// Options.Metrics is on and the HTTP observability endpoint when
// Options.MetricsAddr is set. On listen failure the DB is closed and the
// error returned, so Open never hands back a half-observable store.
func (db *DB) startObs() (*DB, error) {
	if db.opts.Metrics {
		db.recorder = obs.StartRecorder(obs.RecorderConfig{
			Shards:   len(db.shards),
			Interval: db.opts.TimelineInterval,
			Capacity: db.opts.TimelineCapacity,
			Collect:  db.collectShardCounters,
		})
	}
	if db.opts.MetricsAddr == "" {
		return db, nil
	}
	srv, err := obs.StartServer(obs.ServerConfig{
		Addr:     db.opts.MetricsAddr,
		Metrics:  db.metricFamilies,
		Debug:    func() any { return db.debugState() },
		Timeline: func() any { return db.Timeline() },
		Slow:     func() any { return db.SlowOps() },
	})
	if err != nil {
		return nil, errors.Join(err, db.Close())
	}
	db.metrics = srv
	return db, nil
}

// collectShardCounters gathers every shard's cumulative observability
// counters for one flight-recorder tick. It runs on the recorder
// goroutine concurrently with foreground traffic: everything it touches
// is atomics, internal short-lived mutexes, or fields that only change
// after the recorder is stopped (s.wal).
func (db *DB) collectShardCounters() []obs.ShardCounters {
	out := make([]obs.ShardCounters, len(db.shards))
	for i, s := range db.shards {
		sc := &out[i]
		sc.Put = s.lat.Hist(obs.OpPut).Snapshot()
		sc.Get = s.lat.Hist(obs.OpGet).Snapshot()
		del := s.lat.Hist(obs.OpDelete).Snapshot()
		app := s.lat.Hist(obs.OpApply).Snapshot()
		sc.Ops = sc.Put.Count + sc.Get.Count + del.Count + app.Count
		sc.Phases = db.tracer.PhaseSnapshot(i)
		cs := s.sched.Snapshot()
		sc.Stalls = cs.Slowdowns + cs.Stops
		sc.StallNanos = int64(cs.SlowdownTime + cs.StopTime)
		sc.QueueDepth = cs.QueueDepth
		sc.L0Blocks = cs.L0Blocks
		if s.wal != nil {
			ws := s.wal.Stats()
			sc.WALSyncs = ws.Syncs
			sc.WALSyncNanos = ws.SyncNanos
		}
		if c := s.tree.Cache(); c != nil {
			st := c.Stats()
			sc.CacheHits, sc.CacheMisses = st.Hits, st.Misses
		}
	}
	return out
}

// Timeline returns the flight recorder's retained samples, one slice per
// shard, oldest first: a per-interval time series of ops/s, latency
// quantiles, per-phase deltas (when tracing is on), stall state,
// compaction debt, WAL sync latency, and cache hit rate over the last
// Options.TimelineCapacity intervals. Nil unless Options.Metrics (or
// MetricsAddr) is set. Also served at /debug/lsm/timeline.
func (db *DB) Timeline() [][]TimelineSample {
	return db.recorder.Timeline()
}

// SlowOps returns the captured slow operations, newest first: every op
// whose total latency met Options.SlowOpThreshold, with its full phase
// breakdown, retained in a bounded ring. Nil unless SlowOpThreshold is
// set. Also served at /debug/lsm/slow.
func (db *DB) SlowOps() []SpanEvent {
	return db.tracer.SlowOps()
}

// metricFamilies materializes the /metrics payload from a Stats snapshot.
// Called per scrape from HTTP handler goroutines; everything it reads is
// lock-free or behind the few-instruction view mutex.
func (db *DB) metricFamilies() []obs.Family {
	s := db.Stats()
	counter := func(name, help string, v int64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: obs.TypeCounter,
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	gauge := func(name, help string, v float64) obs.Family {
		return obs.Family{Name: name, Help: help, Type: obs.TypeGauge,
			Samples: []obs.Sample{{Value: v}}}
	}
	fams := []obs.Family{
		counter("lsmssd_blocks_written_total", "Data blocks written to the device (the paper's cost metric).", s.BlocksWritten),
		counter("lsmssd_blocks_read_total", "Data blocks read from the device (cache misses only when caching is on).", s.BlocksRead),
		gauge("lsmssd_live_blocks", "Device blocks currently allocated.", float64(s.LiveBlocks)),
		counter("lsmssd_requests_total", "Modification requests processed (inserts plus deletes).", s.Requests),
		counter("lsmssd_inserts_total", "Insert/update requests processed.", s.Inserts),
		counter("lsmssd_deletes_total", "Delete requests processed.", s.Deletes),
		counter("lsmssd_lookups_total", "Point lookups served.", s.Lookups),
		counter("lsmssd_scans_total", "Range scans started.", s.Scans),
		counter("lsmssd_request_bytes_total", "Key+payload bytes of modifications processed.", s.RequestBytes),
		counter("lsmssd_merges_total", "Merges executed.", s.Merges),
		counter("lsmssd_full_merges_total", "Merges that took a whole source level.", s.FullMerges),
		gauge("lsmssd_height", "Tree height including the memtable level.", float64(s.Height)),
		gauge("lsmssd_records", "Records stored, including shadowed versions and tombstones.", float64(s.Records)),
		gauge("lsmssd_memtable_records", "Records currently in the memtable (L0).", float64(s.MemtableRecords)),
		counter("lsmssd_cache_hits_total", "Buffer-cache hits.", s.CacheHits),
		counter("lsmssd_cache_misses_total", "Buffer-cache misses.", s.CacheMisses),
		counter("lsmssd_bloom_skipped_total", "Block reads avoided by Bloom filters.", s.BloomSkipped),
		counter("lsmssd_bloom_passed_total", "Lookups Bloom filters could not rule out.", s.BloomPassed),
		counter("lsmssd_event_drops_total", "Observability events dropped because sinks lagged.", db.bus.Drops()),
		gauge("lsmssd_compaction_queue_depth", "Overflowing merge sources (memtable and full levels) awaiting compaction; always 0 in sync mode.", float64(s.Compaction.QueueDepth)),
		counter("lsmssd_compaction_steps_total", "Cascade steps executed by the background compaction schedulers.", s.Compaction.Steps),
		gauge("lsmssd_shards", "Number of key-space shards (independent LSM trees) behind this DB.", float64(len(db.shards))),
		gauge("lsmssd_quarantined_blocks", "Corrupt blocks currently quarantined (pinned, excluded from merges) across all shards.", float64(s.Quarantined)),
	}
	{
		hf := obs.Family{
			Name: "lsmssd_shard_health",
			Help: "Shard fault-domain state: 0 healthy, 1 degraded, 2 read-only, 3 failed.",
			Type: obs.TypeGauge,
		}
		for _, sh := range db.shards {
			hf.Samples = append(hf.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "shard", Value: strconv.Itoa(sh.id)}},
				Value:  float64(sh.health.State()),
			})
		}
		fams = append(fams, hf)
	}
	if len(db.shards) > 1 {
		shardLabel := func(n int) []obs.Label {
			return []obs.Label{{Name: "shard", Value: strconv.Itoa(n)}}
		}
		perShard := []struct {
			name, help string
			typ        obs.FamilyType
			value      func(ShardStats) float64
		}{
			{"lsmssd_shard_blocks_written_total", "Data blocks written by the shard's tree.", obs.TypeCounter,
				func(ss ShardStats) float64 { return float64(ss.BlocksWritten) }},
			{"lsmssd_shard_requests_total", "Modification requests routed to the shard.", obs.TypeCounter,
				func(ss ShardStats) float64 { return float64(ss.Requests) }},
			{"lsmssd_shard_records", "Records stored in the shard, including shadowed versions and tombstones.", obs.TypeGauge,
				func(ss ShardStats) float64 { return float64(ss.Records) }},
			{"lsmssd_shard_height", "Shard tree height including the memtable level.", obs.TypeGauge,
				func(ss ShardStats) float64 { return float64(ss.Height) }},
		}
		for _, m := range perShard {
			f := obs.Family{Name: m.name, Help: m.help, Type: m.typ}
			for _, ss := range s.Shards {
				f.Samples = append(f.Samples, obs.Sample{Labels: shardLabel(ss.Shard), Value: m.value(ss)})
			}
			fams = append(fams, f)
		}
	}
	if s.WAL.Enabled {
		fams = append(fams,
			gauge("lsmssd_wal_enabled", "1 when the write-ahead log is on.", 1),
			counter("lsmssd_wal_appends_total", "WAL frames appended (one per Put/Delete/Apply).", s.WAL.Appends),
			counter("lsmssd_wal_ops_total", "Operations inside appended WAL frames.", s.WAL.Ops),
			counter("lsmssd_wal_bytes_total", "WAL frame bytes written, headers included.", s.WAL.Bytes),
			counter("lsmssd_wal_syncs_total", "WAL fsyncs issued by the sync policy or checkpoints.", s.WAL.Syncs),
			counter("lsmssd_wal_rotations_total", "WAL segments sealed (each seals a checkpoint).", s.WAL.Rotations),
			gauge("lsmssd_wal_segments", "WAL segment files currently on disk.", float64(s.WAL.Segments)),
			gauge("lsmssd_wal_last_seq", "Sequence of the newest logged frame.", float64(s.WAL.LastSeq)),
			counter("lsmssd_wal_recovered_ops_total", "Operations re-applied by crash recovery at Open.", int64(s.WAL.Recovery.Ops)),
			counter("lsmssd_wal_recovered_torn_bytes_total", "Bytes truncated from the WAL's torn tail at Open.", s.WAL.Recovery.TornBytes),
		)
	}
	stallKind := func(kind string) []obs.Label {
		return []obs.Label{{Name: "kind", Value: kind}}
	}
	fams = append(fams,
		obs.Family{
			Name: "lsmssd_write_stalls_total",
			Help: "Writes that hit compaction backpressure, by kind (slowdown = pacing sleep, stop = hard gate).",
			Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: stallKind("slowdown"), Value: float64(s.Compaction.Slowdowns)},
				{Labels: stallKind("stop"), Value: float64(s.Compaction.Stops)},
			},
		},
		obs.Family{
			Name: "lsmssd_write_stall_seconds_total",
			Help: "Cumulative time writes spent stalled, by kind.",
			Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: stallKind("slowdown"), Value: s.Compaction.SlowdownTime.Seconds()},
				{Labels: stallKind("stop"), Value: s.Compaction.StopTime.Seconds()},
			},
		},
	)

	levelLabel := func(n int) []obs.Label {
		return []obs.Label{{Name: "level", Value: strconv.Itoa(n)}}
	}
	perLevel := []struct {
		name, help string
		typ        obs.FamilyType
		value      func(LevelStats) float64
	}{
		{"lsmssd_level_blocks", "Data blocks in the level.", obs.TypeGauge,
			func(l LevelStats) float64 { return float64(l.Blocks) }},
		{"lsmssd_level_records", "Records in the level.", obs.TypeGauge,
			func(l LevelStats) float64 { return float64(l.Records) }},
		{"lsmssd_level_capacity_blocks", "Level capacity K_i in blocks.", obs.TypeGauge,
			func(l LevelStats) float64 { return float64(l.CapacityBlocks) }},
		{"lsmssd_level_waste_factor", "Fraction of empty record slots in the level (bounded by epsilon).", obs.TypeGauge,
			func(l LevelStats) float64 { return l.WasteFactor }},
		{"lsmssd_level_blocks_written_total", "Cumulative blocks written into the level.", obs.TypeCounter,
			func(l LevelStats) float64 { return float64(l.BlocksWritten) }},
		{"lsmssd_level_compactions_total", "Compactions of the level.", obs.TypeCounter,
			func(l LevelStats) float64 { return float64(l.Compactions) }},
	}
	for _, m := range perLevel {
		f := obs.Family{Name: m.name, Help: m.help, Type: m.typ}
		for _, l := range s.Levels {
			f.Samples = append(f.Samples, obs.Sample{Labels: levelLabel(l.Level), Value: m.value(l)})
		}
		fams = append(fams, f)
	}

	lf := obs.Family{
		Name: "lsmssd_op_duration_seconds",
		Help: "Operation latency (log-spaced buckets). Recorded only when Options.Metrics or MetricsAddr is set.",
		Type: obs.TypeHistogram,
	}
	if db.lat.Enabled() {
		for op := obs.Op(0); op < obs.NumOps; op++ {
			lf.Hists = append(lf.Hists, obs.HistSample{
				Labels: []obs.Label{{Name: "op", Value: op.String()}},
				Snap:   db.latHist(op),
				Scale:  1e-9,
			})
		}
	}
	fams = append(fams, lf)
	if db.lat.Enabled() && len(db.shards) > 1 {
		sf := obs.Family{
			Name: "lsmssd_shard_op_duration_seconds",
			Help: "Operation latency by owning shard (log-spaced buckets).",
			Type: obs.TypeHistogram,
		}
		for _, sh := range db.shards {
			for op := obs.Op(0); op < obs.NumOps; op++ {
				snap := sh.lat.Hist(op).Snapshot()
				if snap.Count == 0 {
					continue
				}
				sf.Hists = append(sf.Hists, obs.HistSample{
					Labels: []obs.Label{
						{Name: "shard", Value: strconv.Itoa(sh.id)},
						{Name: "op", Value: op.String()},
					},
					Snap:  snap,
					Scale: 1e-9,
				})
			}
		}
		fams = append(fams, sf)
	}
	if db.tracer.Enabled() {
		pf := obs.Family{
			Name: "lsmssd_phase_duration_seconds",
			Help: "Traced-operation time by engine phase, summed across shards (requires TraceSampleRate or SlowOpThreshold).",
			Type: obs.TypeHistogram,
		}
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			var snap obs.HistSnapshot
			for i := range db.shards {
				snap.Merge(db.tracer.PhaseSnapshot(i)[p])
			}
			if snap.Count == 0 {
				continue
			}
			pf.Hists = append(pf.Hists, obs.HistSample{
				Labels: []obs.Label{{Name: "phase", Value: p.String()}},
				Snap:   snap,
				Scale:  1e-9,
			})
		}
		fams = append(fams, pf)
	}
	if latest := db.recorder.Latest(); len(latest) > 0 {
		shardLabel := func(n int) []obs.Label {
			return []obs.Label{{Name: "shard", Value: strconv.Itoa(n)}}
		}
		timeline := []struct {
			name, help string
			value      func(TimelineSample) float64
		}{
			{"lsmssd_timeline_ops_per_sec", "Operations per second over the last flight-recorder interval.",
				func(t TimelineSample) float64 { return t.OpsPerSec }},
			{"lsmssd_timeline_put_p99_seconds", "Put p99 over the last flight-recorder interval.",
				func(t TimelineSample) float64 { return float64(t.PutP99NS) * 1e-9 }},
			{"lsmssd_timeline_get_p99_seconds", "Get p99 over the last flight-recorder interval.",
				func(t TimelineSample) float64 { return float64(t.GetP99NS) * 1e-9 }},
			{"lsmssd_timeline_stalls", "Write stalls during the last flight-recorder interval.",
				func(t TimelineSample) float64 { return float64(t.Stalls) }},
			{"lsmssd_timeline_l0_blocks", "L0 size in blocks at the last flight-recorder tick.",
				func(t TimelineSample) float64 { return float64(t.L0Blocks) }},
			{"lsmssd_timeline_wal_sync_mean_seconds", "Mean WAL fsync latency over the last flight-recorder interval.",
				func(t TimelineSample) float64 { return float64(t.WALSyncMeanNS) * 1e-9 }},
			{"lsmssd_timeline_cache_hit_rate", "Buffer-cache hit rate over the last flight-recorder interval.",
				func(t TimelineSample) float64 { return t.CacheHitRate }},
		}
		for _, m := range timeline {
			f := obs.Family{Name: m.name, Help: m.help, Type: obs.TypeGauge}
			for _, t := range latest {
				f.Samples = append(f.Samples, obs.Sample{Labels: shardLabel(t.Shard), Value: m.value(t)})
			}
			fams = append(fams, f)
		}
	}
	return fams
}

// debugLevelJSON is one storage level in the /debug/lsm dump.
type debugLevelJSON struct {
	Level          int     `json:"level"`
	Blocks         int     `json:"blocks"`
	Records        int     `json:"records"`
	CapacityBlocks int     `json:"capacity_blocks"`
	WasteFactor    float64 `json:"waste_factor"`
	BlocksWritten  int64   `json:"blocks_written"`
	Compactions    int64   `json:"compactions"`
}

// debugStateJSON is the /debug/lsm payload: per-level state plus the
// snapshot-machinery internals (live views, deferred frees) that Stats
// does not expose.
type debugStateJSON struct {
	Policy          string           `json:"policy"`
	Shards          int              `json:"shards"`
	Height          int              `json:"height"`
	Records         int              `json:"records"`
	MemtableRecords int              `json:"memtable_records"`
	BlocksWritten   int64            `json:"blocks_written"`
	BlocksRead      int64            `json:"blocks_read"`
	LiveBlocks      int64            `json:"live_blocks"`
	LiveViews       int              `json:"live_views"`
	DeferredFrees   int64            `json:"deferred_frees"`
	EventDrops      int64            `json:"event_drops"`
	CompactionMode  string           `json:"compaction_mode"`
	CompactionQueue int              `json:"compaction_queue_depth"`
	WriteStalls     int64            `json:"write_stalls"`
	Health          string           `json:"health"`
	Quarantined     int              `json:"quarantined_blocks"`
	ShardHealth     []ShardHealth    `json:"shard_health,omitempty"`
	WAL             *WALStats        `json:"wal,omitempty"`
	Levels          []debugLevelJSON `json:"levels"`
	Latencies       []LatencyStats   `json:"latencies,omitempty"`
}

func (db *DB) debugState() debugStateJSON {
	s := db.Stats()
	liveViews, deferredFrees := 0, int64(0)
	for _, sh := range db.shards {
		liveViews += sh.tree.LiveViews()
		deferredFrees += sh.tree.DeferredFrees()
	}
	d := debugStateJSON{
		Policy:          db.opts.MergePolicy.String(),
		Shards:          len(db.shards),
		Height:          s.Height,
		Records:         s.Records,
		MemtableRecords: s.MemtableRecords,
		BlocksWritten:   s.BlocksWritten,
		BlocksRead:      s.BlocksRead,
		LiveBlocks:      s.LiveBlocks,
		LiveViews:       liveViews,
		DeferredFrees:   deferredFrees,
		EventDrops:      db.bus.Drops(),
		CompactionMode:  s.Compaction.Mode,
		CompactionQueue: s.Compaction.QueueDepth,
		WriteStalls:     s.Compaction.Slowdowns + s.Compaction.Stops,
		Health:          s.Health,
		Quarantined:     s.Quarantined,
		Latencies:       s.Latencies,
	}
	hr := db.Health()
	if hr.State != health.Healthy.String() {
		d.ShardHealth = hr.Shards
	}
	if s.WAL.Enabled {
		w := s.WAL
		d.WAL = &w
	}
	for _, l := range s.Levels {
		d.Levels = append(d.Levels, debugLevelJSON{
			Level:          l.Level,
			Blocks:         l.Blocks,
			Records:        l.Records,
			CapacityBlocks: l.CapacityBlocks,
			WasteFactor:    l.WasteFactor,
			BlocksWritten:  l.BlocksWritten,
			Compactions:    l.Compactions,
		})
	}
	return d
}
