package lsmssd_test

import (
	"fmt"
	"testing"
	"time"

	"lsmssd"
)

// TestBackgroundCompactionBasic is the API-level smoke test for
// Options.CompactionMode: background writes land, reads see them, the
// scheduler reports its mode and step count through Stats, and Close
// drains cleanly.
func TestBackgroundCompactionBasic(t *testing.T) {
	opts := smallOptions()
	opts.CompactionMode = lsmssd.BackgroundCompaction
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		if err := db.Put(k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprint(k) {
			t.Fatalf("Get(%d) = %q, %v, %v", k, v, ok, err)
		}
	}
	st := db.Stats()
	if st.Compaction.Mode != "background" {
		t.Fatalf("Stats.Compaction.Mode = %q, want background", st.Compaction.Mode)
	}
	// 1000 records over a 16-record L0 forces merges; the background
	// goroutine is the only thing allowed to run them.
	deadline := time.Now().Add(10 * time.Second)
	for db.Stats().Compaction.Steps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background cascade steps observed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStallBackpressure drives writes hard enough that admission hits the
// slowdown or stop trigger, and checks the stalls are counted and timed.
func TestStallBackpressure(t *testing.T) {
	opts := smallOptions()
	opts.CompactionMode = lsmssd.BackgroundCompaction
	opts.SlowdownTrigger = opts.MemtableBlocks // stall as early as legal
	opts.StopTrigger = opts.MemtableBlocks + 1
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	stalled := func() bool {
		c := db.Stats().Compaction
		return c.Slowdowns+c.Stops > 0
	}
	for k := uint64(0); k < 200_000 && !stalled(); k++ {
		if err := db.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if !stalled() {
		t.Fatal("200k writes against a 2-block L0 never tripped backpressure")
	}
	c := db.Stats().Compaction
	if c.Slowdowns > 0 && c.SlowdownTime == 0 {
		t.Fatal("slowdown stalls counted but no stall time recorded")
	}
	if c.Stops > 0 && c.StopTime == 0 {
		t.Fatal("stop stalls counted but no stall time recorded")
	}

	// Sync mode must never stall: the triggers are background-only knobs.
	sdb, err := lsmssd.Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	for k := uint64(0); k < 5000; k++ {
		if err := sdb.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if c := sdb.Stats().Compaction; c.Mode != "sync" || c.Slowdowns+c.Stops != 0 {
		t.Fatalf("sync DB reported mode=%q stalls=%d", c.Mode, c.Slowdowns+c.Stops)
	}
}
