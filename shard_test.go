package lsmssd_test

// Sharded-engine coverage: routing transparency (the public API behaves
// identically at any shard count), cross-shard iterator ordering,
// snapshot isolation under concurrent writers, batch/DB binding,
// OpenPath, shard-count persistence, and the Shards=1 compatibility
// guarantee (same write cost and same on-device bytes as the default
// single-tree configuration).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lsmssd"
	"lsmssd/internal/crashloop"
)

// shardOpts is smallOpts spread over n trees.
func shardOpts(n int) lsmssd.Options {
	o := smallOpts()
	o.Shards = n
	return o
}

// TestShardedCrossShardIteratorOrder drives keys into every shard and
// checks that the merging iterator returns one globally sorted stream:
// ascending keys, correct values, deletes honored, bounds respected.
func TestShardedCrossShardIteratorOrder(t *testing.T) {
	db, err := lsmssd.Open(shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k += 7 {
		if err := db.Delete(k); err != nil {
			t.Fatal(err)
		}
	}

	var want []uint64
	for k := uint64(300); k <= 1699; k++ {
		if k%7 != 0 {
			want = append(want, k)
		}
	}

	it, err := db.NewIterator(300, 1699)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.Next() {
		if i >= len(want) {
			t.Fatalf("iterator returned extra key %d past the %d expected", it.Key(), len(want))
		}
		if it.Key() != want[i] {
			t.Fatalf("position %d: got key %d, want %d (cross-shard merge out of order)", i, it.Key(), want[i])
		}
		if got := string(it.Value()); got != fmt.Sprintf("v%d", want[i]) {
			t.Fatalf("key %d: value %q", want[i], got)
		}
		i++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("iterator returned %d keys, want %d", i, len(want))
	}

	// Scan is the same merge; it must agree exactly.
	j := 0
	if err := db.Scan(300, 1699, func(k uint64, v []byte) bool {
		if j >= len(want) || k != want[j] {
			t.Fatalf("Scan position %d: got key %d", j, k)
		}
		j++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if j != len(want) {
		t.Fatalf("Scan returned %d keys, want %d", j, len(want))
	}
}

// TestShardedSnapshotIsolation pins a cross-shard iterator's snapshot,
// then hammers every shard from concurrent writers; the iterator must
// still see exactly the pre-snapshot contents. Run under -race this also
// proves the router's lock structure keeps per-shard writers and the
// merging reader apart.
func TestShardedSnapshotIsolation(t *testing.T) {
	db, err := lsmssd.Open(shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 600
	for k := uint64(0); k < n; k += 2 {
		if err := db.Put(k, []byte("old")); err != nil {
			t.Fatal(err)
		}
	}

	it, err := db.NewIterator(0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for k := uint64(g); k < n; k += 4 {
					if err := db.Put(k, []byte("new")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	seen := 0
	for it.Next() {
		if it.Key()%2 != 0 {
			t.Fatalf("snapshot leaked key %d written after NewIterator", it.Key())
		}
		if !bytes.Equal(it.Value(), []byte("old")) {
			t.Fatalf("key %d: snapshot sees later value %q", it.Key(), it.Value())
		}
		seen++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != n/2 {
		t.Fatalf("snapshot iterator saw %d keys, want %d", seen, n/2)
	}
	wg.Wait()

	// The live state has every key at "new".
	for k := uint64(1); k < n; k += 97 {
		v, ok, err := db.Get(k)
		if err != nil || !ok || !bytes.Equal(v, []byte("new")) {
			t.Fatalf("live Get(%d) = %q, %v, %v", k, v, ok, err)
		}
	}
}

// TestBatchBoundToDB: a batch created by one DB partitions for that DB's
// shard count and must be rejected by any other DB; an unbound zero-value
// batch works anywhere.
func TestBatchBoundToDB(t *testing.T) {
	db1, err := lsmssd.Open(shardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	db2, err := lsmssd.Open(shardOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	b := db1.NewBatch()
	for k := uint64(0); k < 100; k++ {
		b.Put(k, []byte(fmt.Sprintf("b%d", k)))
	}
	if err := db2.Apply(b); !errors.Is(err, lsmssd.ErrBatchDB) {
		t.Fatalf("Apply on the wrong DB = %v, want ErrBatchDB", err)
	}
	if err := db1.Apply(b); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k += 13 {
		v, ok, err := db1.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("b%d", k) {
			t.Fatalf("Get(%d) = %q, %v, %v", k, v, ok, err)
		}
	}

	// A zero-value batch binds lazily on first Apply, re-partitioning its
	// staged ops for whatever shard count it lands on.
	var zb lsmssd.WriteBatch
	for k := uint64(200); k < 300; k++ {
		zb.Put(k, []byte("z"))
	}
	if err := db1.Apply(&zb); err != nil {
		t.Fatal(err)
	}
	for k := uint64(200); k < 300; k += 17 {
		v, ok, err := db1.Get(k)
		if err != nil || !ok || string(v) != "z" {
			t.Fatalf("Get(%d) after zero-value batch = %q, %v, %v", k, v, ok, err)
		}
	}
	// ...and is then bound: the other DB rejects it.
	zb.Reset()
	zb.Put(1, nil)
	if err := db2.Apply(&zb); !errors.Is(err, lsmssd.ErrBatchDB) {
		t.Fatalf("re-used zero-value batch on other DB = %v, want ErrBatchDB", err)
	}
}

// TestOpenPath covers the functional-options constructor: directory
// layout, option application, and reopen with the same options.
func TestOpenPath(t *testing.T) {
	if _, err := lsmssd.OpenPath(""); err == nil {
		t.Fatal("OpenPath(\"\") should fail")
	}

	dir := filepath.Join(t.TempDir(), "store")
	db, err := lsmssd.OpenPath(dir,
		lsmssd.WithShards(2),
		lsmssd.WithMemtableBlocks(4),
		lsmssd.WithSync(lsmssd.SyncEvery),
	)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("p%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = lsmssd.OpenPath(dir,
		lsmssd.WithShards(2),
		lsmssd.WithMemtableBlocks(4),
		lsmssd.WithSync(lsmssd.SyncEvery),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 500; k += 31 {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("p%d", k) {
			t.Fatalf("after reopen Get(%d) = %q, %v, %v", k, v, ok, err)
		}
	}
}

// TestShardCountPersisted: the manifest records the shard count, and a
// reopen with a different Options.Shards is refused with an error that
// says what the store was created with.
func TestShardCountPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.blk")
	opts := shardOpts(2)
	opts.Path = path
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k++ {
		if err := db.Put(k, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	wrong := shardOpts(4)
	wrong.Path = path
	if _, err := lsmssd.Open(wrong); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("reopen with Shards=4 of a 2-shard store = %v, want shard-count error", err)
	}

	db, err = lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 300; k += 41 {
		if _, ok, err := db.Get(k); err != nil || !ok {
			t.Fatalf("after correct reopen Get(%d) = %v, %v", k, ok, err)
		}
	}
}

// TestShardsOneMatchesDefault is the compatibility gate: Shards=1 must be
// the same engine as the pre-sharding default — same BlocksWritten, same
// bytes on the device file, no extra shard files.
func TestShardsOneMatchesDefault(t *testing.T) {
	run := func(dir string, shards int) int64 {
		o := fileOpts(filepath.Join(dir, "store.blk"))
		o.Shards = shards // 0 and 1 must behave identically
		db, err := lsmssd.Open(o)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 2000; k++ {
			if err := db.Put(k*2654435761%4096, []byte(fmt.Sprintf("v%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		w := db.Stats().BlocksWritten
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return w
	}

	dirDefault, dirOne := t.TempDir(), t.TempDir()
	wDefault := run(dirDefault, 0)
	wOne := run(dirOne, 1)
	if wDefault != wOne {
		t.Fatalf("BlocksWritten diverged: default %d, Shards=1 %d", wDefault, wOne)
	}

	bDefault, err := os.ReadFile(filepath.Join(dirDefault, "store.blk"))
	if err != nil {
		t.Fatal(err)
	}
	bOne, err := os.ReadFile(filepath.Join(dirOne, "store.blk"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bDefault, bOne) {
		t.Fatal("device files differ between default and Shards=1")
	}
	if _, err := os.Stat(filepath.Join(dirOne, "store.blk.shard1")); !os.IsNotExist(err) {
		t.Fatalf("Shards=1 store grew a shard file: %v", err)
	}
}

// TestShardedStatsBreakdown: Stats carries one ShardStats per shard whose
// counters sum to the aggregate, and flush events are stamped with the
// shard that produced them.
func TestShardedStatsBreakdown(t *testing.T) {
	db, err := lsmssd.Open(shardOpts(4))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	flushShards := map[int]bool{}
	cancel := db.Subscribe(func(ev lsmssd.Event) {
		if f, ok := ev.(lsmssd.FlushEvent); ok {
			mu.Lock()
			flushShards[f.Shard] = true
			mu.Unlock()
		}
	})
	defer cancel()

	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := db.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	s := db.Stats()
	if len(s.Shards) != 4 {
		t.Fatalf("Stats.Shards has %d entries, want 4", len(s.Shards))
	}
	var sumW, sumReq int64
	var sumRec int
	for i, sh := range s.Shards {
		if sh.Shard != i {
			t.Fatalf("Shards[%d].Shard = %d", i, sh.Shard)
		}
		if sh.Requests == 0 {
			t.Errorf("shard %d received no requests; router is not spreading keys", i)
		}
		sumW += sh.BlocksWritten
		sumReq += sh.Requests
		sumRec += sh.Records
	}
	if sumW != s.BlocksWritten {
		t.Errorf("per-shard BlocksWritten sum %d != aggregate %d", sumW, s.BlocksWritten)
	}
	if sumReq != s.Requests || s.Requests != n {
		t.Errorf("requests: per-shard sum %d, aggregate %d, want %d", sumReq, s.Requests, n)
	}
	if sumRec != s.Records || s.Records != n {
		t.Errorf("records: per-shard sum %d, aggregate %d, want %d", sumRec, s.Records, n)
	}

	// Close drains the bus, so after it every flush so far is delivered.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushShards) < 2 {
		t.Errorf("flush events came from %d shard(s), want several: %v", len(flushShards), flushShards)
	}
}

// TestCrashLoopSharded is the sharded durability gate: at least 50
// randomized power cuts against a 4-shard store under SyncEvery, every
// recovery restoring each shard's acked frames exactly.
func TestCrashLoopSharded(t *testing.T) {
	report, err := crashloop.Run(crashloop.Config{
		Dir:       t.TempDir(),
		Iters:     55,
		MaxOps:    60,
		Seed:      7,
		KeySpace:  256,
		Shards:    4,
		Sync:      lsmssd.SyncEvery,
		CrashProb: 1.0,
		TornTail:  true,
	})
	t.Log(report)
	if err != nil {
		t.Fatal(err)
	}
	if report.Crashes < 50 {
		t.Fatalf("only %d power cuts exercised, want at least 50", report.Crashes)
	}
	if report.LostFrames != 0 {
		t.Fatalf("SyncEvery lost %d acked frames across shards", report.LostFrames)
	}
	if report.Recoveries == 0 {
		t.Error("no recovery ever replayed frames")
	}
}
