// Command benchjson runs a fixed write or read workload against the
// engine and emits a machine-readable result file (BENCH_write.json /
// BENCH_read.json via the Makefile), so successive PRs have a perf
// trajectory to diff instead of eyeballing `go test -bench` output.
//
// The workload is deterministic (seeded key stream, fixed op count), so
// two runs on the same tree state report the same BlocksWritten; latency
// and throughput fields carry the machine noise. Reported fields: ops/s,
// p50/p99/max per-op latency, and the device counters.
//
// Usage:
//
//	go run ./cmd/benchjson -mode write -out BENCH_write.json
//	go run ./cmd/benchjson -mode read  -out BENCH_read.json
//	go run ./cmd/benchjson -mode write -sweep 1,2,4,8 -out BENCH_write.json
//	go run ./cmd/benchjson -mode policy -out BENCH_policy.json
//
// -shards runs the workload against a sharded engine (Options.Shards);
// -sweep repeats the run once per listed shard count and emits a JSON
// array, the shard-scaling curve the sharding work is judged by.
//
// -mode policy runs the small-scale layout sweep instead: leveling,
// tiering, and lazy leveling, each measured on uniform, delete-heavy, and
// scan-heavy request mixes through the experiment harness (deterministic,
// no latency fields). The emitted array is the write-amp/read-amp
// tradeoff curve the layout work is judged by.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lsmssd"
	"lsmssd/internal/experiments"
)

// result is the JSON document benchjson emits (one element of the array
// under -sweep).
type result struct {
	Mode          string  `json:"mode"`
	Shards        int     `json:"shards"`
	Ops           int     `json:"ops"`
	Goroutines    int     `json:"goroutines"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	MaxNS         int64   `json:"max_ns"`
	BlocksWritten int64   `json:"blocks_written"`
	BlocksRead    int64   `json:"blocks_read"`
}

func main() {
	mode := flag.String("mode", "write", "workload: write or read")
	ops := flag.Int("ops", 200_000, "operations to run (measured phase)")
	goroutines := flag.Int("goroutines", 4, "concurrent workers")
	seed := flag.Int64("seed", 1, "key-stream seed")
	shards := flag.Int("shards", 1, "Options.Shards for the engine under test (power of two)")
	sweep := flag.String("sweep", "", "comma-separated shard counts; runs once per count and emits a JSON array (overrides -shards)")
	tierRuns := flag.Int("tier-runs", 4, "run budget T for tiered layouts (-mode policy)")
	scale := flag.Float64("scale", 0.02, "experiment-harness scale for -mode policy")
	out := flag.String("out", "", "output path (default BENCH_<mode>.json)")
	flag.Parse()

	if *mode == "policy" {
		if err := runPolicy(*scale, *seed, *tierRuns, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	counts := []int{*shards}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -sweep entry %q: %v\n", f, err)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}

	results := make([]*result, 0, len(counts))
	for _, n := range counts {
		res, err := run(*mode, *ops, *goroutines, *seed, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s shards=%d: %d ops, %.0f ops/s, p50 %s p99 %s, %d blocks written\n",
			res.Mode, res.Shards, res.Ops, res.OpsPerSec,
			time.Duration(res.P50NS), time.Duration(res.P99NS), res.BlocksWritten)
		results = append(results, res)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *mode + ".json"
	}
	var doc any = results[0]
	if *sweep != "" {
		doc = results
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("benchjson: wrote", path)
}

// runPolicy emits BENCH_policy.json: the layout × workload sweep. The
// harness drives synchronous single-writer trees over a counted memory
// device, so the numbers are deterministic for a given seed and scale.
func runPolicy(scale float64, seed int64, tierRuns int, out string) error {
	p := experiments.Params{Scale: scale, Seed: seed}.WithDefaults()
	rows, table, err := p.LayoutSweep(
		experiments.DefaultLayouts(tierRuns), experiments.LayoutWorkloads, 16, 8)
	if err != nil {
		return err
	}
	if _, err := table.WriteTo(os.Stdout); err != nil {
		return err
	}
	if out == "" {
		out = "BENCH_policy.json"
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("benchjson: wrote", out)
	return nil
}

func run(mode string, ops, goroutines int, seed int64, shards int) (*result, error) {
	if goroutines < 1 || ops < goroutines {
		return nil, fmt.Errorf("need goroutines >= 1 and ops >= goroutines (got %d, %d)", ops, goroutines)
	}
	db, err := lsmssd.Open(lsmssd.Options{
		Shards:         shards,
		CompactionMode: lsmssd.BackgroundCompaction,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "benchjson: close:", cerr)
		}
	}()

	const keySpace = 4_000_000
	payload := make([]byte, 100)

	// Read mode measures lookups against a preloaded tree; the load phase
	// is not timed and its device traffic is subtracted below.
	if mode == "read" {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < keySpace/4; i++ {
			if err := db.Put(uint64(rng.Intn(keySpace)), payload); err != nil {
				return nil, err
			}
		}
	} else if mode != "write" {
		return nil, fmt.Errorf("unknown mode %q (want write or read)", mode)
	}
	base := db.Stats()

	lats := make([][]time.Duration, goroutines)
	errs := make([]error, goroutines)
	done := make(chan struct{})
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			n := ops / goroutines
			if g < ops%goroutines {
				n++
			}
			lat := make([]time.Duration, n)
			rng := rand.New(rand.NewSource(seed + int64(g)*7919))
			for i := 0; i < n; i++ {
				k := uint64(rng.Intn(keySpace))
				var opErr error
				t0 := time.Now()
				if mode == "write" {
					opErr = db.Put(k, payload)
				} else {
					_, _, opErr = db.Get(k)
				}
				lat[i] = time.Since(t0)
				if opErr != nil {
					errs[g] = opErr
					lats[g] = lat[:i]
					return
				}
			}
			lats[g] = lat
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	// A run that measured fewer ops than requested without reporting an
	// error would silently publish a bogus trajectory point; refuse it.
	if len(all) != ops {
		return nil, fmt.Errorf("%s run measured %d of %d requested ops with no error; refusing to emit a partial result", mode, len(all), ops)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(all)-1))
		return int64(all[i])
	}
	cur := db.Stats()
	return &result{
		Mode:          mode,
		Shards:        shards,
		Ops:           len(all),
		Goroutines:    goroutines,
		ElapsedNS:     int64(elapsed),
		OpsPerSec:     float64(len(all)) / elapsed.Seconds(),
		P50NS:         pct(0.50),
		P99NS:         pct(0.99),
		MaxNS:         int64(all[len(all)-1]),
		BlocksWritten: cur.BlocksWritten - base.BlocksWritten,
		BlocksRead:    cur.BlocksRead - base.BlocksRead,
	}, nil
}
