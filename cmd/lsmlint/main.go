// Command lsmlint is the repository's static analyzer. It enforces the
// coding disciplines the engine's correctness and experiments depend on:
// device I/O confined to the accounting layers, seeded randomness only,
// no dropped errors on Close or module APIs, and package layering.
//
// Usage:
//
//	go run ./cmd/lsmlint ./...
//
// Exits 1 when findings exist, 2 on analysis failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"lsmssd/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lsmlint [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lsmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
