// Command lsmlint is the repository's static analyzer. It enforces the
// coding disciplines the engine's correctness and experiments depend on:
// device I/O confined to the accounting layers, seeded randomness only,
// no dropped errors, package layering, and the path-sensitive protocols
// the engine's concurrency and durability arguments rest on (writer-lock
// discipline, view refcounting, sentinel error flow, WAL ordering,
// goroutine shutdown).
//
// Usage:
//
//	go run ./cmd/lsmlint ./...
//	go run ./cmd/lsmlint -rules lock-discipline,wal-ordering ./...
//	go run ./cmd/lsmlint -json ./... > findings.json
//
// Exits 1 when findings exist, 2 on analysis failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lsmssd/internal/lint"
	"lsmssd/internal/lint/rules"
)

// jsonFinding is the machine-readable finding shape for -json.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	ruleList := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	listRules := flag.Bool("list", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lsmlint [-rules r1,r2] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range rules.All() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}

	selected, err := rules.Select(*ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns, lint.DefaultConfig(), selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename,
				Line: f.Pos.Line,
				Col:  f.Pos.Column,
				Rule: f.Rule,
				Msg:  f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lsmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lsmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
