// Command crashloop runs the power-cut recovery harness
// (internal/crashloop) from the command line: randomized
// mutate→crash→reopen cycles against a file-backed store, verifying the
// write-ahead log's acked-write guarantee after every recovery.
//
// Usage:
//
//	crashloop [-dir DIR] [-iters 50] [-ops 200] [-seed 1] \
//	          [-sync every|interval|never] [-interval 2ms] \
//	          [-keyspace 512] [-shards 1] [-layout leveling|tiering|lazy] \
//	          [-tier-runs 4] [-torn] [-paranoid] [-v]
//
// The process exits non-zero if any recovery violates the durability
// contract (lost acked writes under -sync every, a non-prefix state under
// the weaker policies, or a validation failure after reopen).
//
// With -chaos the command runs the fault-domain isolation soak instead:
// seeded device-fault scenarios (bit rot, ENOSPC, sticky sync failures,
// latency, flaky reads) injected into one shard of a sharded store, with
// the blast radius, health-event causes, and acked-write durability
// checked against a paired fault-free run. -scenario selects a single
// scenario; -ops and -shards apply (shards defaults to 4 in chaos mode).
//
//	crashloop -chaos [-scenario bitflip|enospc|stickysync|latency|transient]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lsmssd"
	"lsmssd/internal/crashloop"
)

func main() {
	var (
		dir      = flag.String("dir", "", "working directory (default: a fresh temp dir, removed on success)")
		iters    = flag.Int("iters", 50, "crash/restart cycles")
		ops      = flag.Int("ops", 200, "max mutations per cycle")
		seed     = flag.Int64("seed", 1, "RNG seed (same seed, same schedule)")
		syncMode = flag.String("sync", "every", "WAL sync policy: every, interval, or never")
		interval = flag.Duration("interval", 2*time.Millisecond, "sync period for -sync interval")
		keySpace = flag.Uint64("keyspace", 512, "keys drawn from [0, keyspace)")
		shards   = flag.Int("shards", 1, "Options.Shards for the store under test (power of two)")
		torn     = flag.Bool("torn", true, "append garbage to the last WAL segment after some crashes")
		paranoid = flag.Bool("paranoid", false, "run the store with Options.Paranoid")
		layout   = flag.String("layout", "leveling", "level layout: leveling, tiering, or lazy")
		tierRuns = flag.Int("tier-runs", 0, "run budget T for tiered layouts (0 = default)")
		chaos    = flag.Bool("chaos", false, "run the fault-domain isolation soak instead of the crash loop")
		scenario = flag.String("scenario", "", "chaos scenario to run: bitflip, enospc, stickysync, latency, or transient (default: all)")
		verbose  = flag.Bool("v", false, "log each cycle")
	)
	flag.Parse()

	if *chaos {
		runChaos(*dir, *shards, *ops, *seed, *scenario, *verbose)
		return
	}

	var lay lsmssd.Layout
	switch *layout {
	case "leveling":
		lay = lsmssd.Leveling
	case "tiering":
		lay = lsmssd.Tiering
	case "lazy", "lazy-leveling":
		lay = lsmssd.LazyLeveling
	default:
		fmt.Fprintf(os.Stderr, "crashloop: unknown -layout %q (want leveling, tiering, or lazy)\n", *layout)
		os.Exit(2)
	}

	var policy lsmssd.SyncPolicy
	switch *syncMode {
	case "every":
		policy = lsmssd.SyncEvery
	case "interval":
		policy = lsmssd.SyncInterval
	case "never":
		policy = lsmssd.SyncNever
	default:
		fmt.Fprintf(os.Stderr, "crashloop: unknown -sync %q (want every, interval, or never)\n", *syncMode)
		os.Exit(2)
	}

	workDir := *dir
	cleanup := false
	if workDir == "" {
		d, err := os.MkdirTemp("", "crashloop-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashloop: %v\n", err)
			os.Exit(1)
		}
		workDir, cleanup = d, true
	}

	cfg := crashloop.Config{
		Dir:      workDir,
		Iters:    *iters,
		MaxOps:   *ops,
		Seed:     *seed,
		KeySpace: *keySpace,
		Shards:   *shards,
		Sync:     policy,
		Interval: *interval,
		TornTail: *torn,
		Paranoid: *paranoid,
		Layout:   lay,
		TierRuns: *tierRuns,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	report, err := crashloop.Run(cfg)
	fmt.Println(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashloop: FAIL: %v\n(store files kept in %s)\n", err, workDir)
		os.Exit(1)
	}
	if cleanup {
		if err := os.RemoveAll(workDir); err != nil {
			fmt.Fprintf(os.Stderr, "crashloop: cleanup: %v\n", err)
		}
	}
	fmt.Println("crashloop: PASS")
}

// runChaos drives the chaos mode. The -ops flag shares its default (200)
// with the crash loop, which is far too small a soak for the fault
// schedules to fire, so chaos mode only honors -ops when it was set
// explicitly and otherwise takes the harness default.
func runChaos(dir string, shards, ops int, seed int64, scenario string, verbose bool) {
	opsSet, shardsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ops":
			opsSet = true
		case "shards":
			shardsSet = true
		}
	})
	if !opsSet {
		ops = 0
	}
	if !shardsSet {
		shards = 0 // chaos defaults to 4 shards, not the crash loop's 1
	}
	workDir := dir
	cleanup := false
	if workDir == "" {
		d, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashloop: %v\n", err)
			os.Exit(1)
		}
		workDir, cleanup = d, true
	}
	cfg := crashloop.ChaosConfig{
		Dir:      workDir,
		Shards:   shards,
		Ops:      ops,
		Seed:     seed,
		Scenario: scenario,
	}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	report, err := crashloop.RunChaos(cfg)
	fmt.Println(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashloop: chaos FAIL: %v\n(store files kept in %s)\n", err, workDir)
		os.Exit(1)
	}
	if cleanup {
		if err := os.RemoveAll(workDir); err != nil {
			fmt.Fprintf(os.Stderr, "crashloop: cleanup: %v\n", err)
		}
	}
	fmt.Println("crashloop: chaos PASS")
}
