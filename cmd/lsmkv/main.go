// Command lsmkv is a small interactive (or scriptable) key-value shell
// over the lsmssd engine, useful for poking at merge behaviour by hand.
//
// Usage:
//
//	lsmkv [-path file.blk] [-shards 1] [-policy ChooseBest] [-preserve=true] [-compaction sync] [-wal] [-sync every] [-metrics 127.0.0.1:8080]
//
// Commands (one per line on stdin):
//
//	put <key> <value>     insert or update
//	get <key>             lookup
//	del <key>             delete
//	scan <lo> <hi>        range scan (inclusive)
//	fill <n> [seed]       insert n random records
//	churn <n> [seed]      n random 50/50 inserts/deletes
//	stats                 engine statistics
//	levels                per-level breakdown
//	hist <level> <nbuck>  key histogram of a level
//	health                per-shard health, causes, quarantined blocks
//	validate              check every invariant
//	help                  this text
//	quit
//
// With -scrub <interval> a background scrubber verifies device-block
// checksums per shard at that cadence (e.g. -scrub 5s); corrupt blocks
// are repaired from surviving cached copies or quarantined, and every
// health transition and scrub pass summary is echoed to stderr.
package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"flag"

	"lsmssd"
)

func main() {
	var (
		path       = flag.String("path", "", "file-backed device path (default: in-memory)")
		shards     = flag.Int("shards", 1, "split the key space across this many independent trees (power of two)")
		policy     = flag.String("policy", "ChooseBest", "merge policy: Full, RR, ChooseBest, TestMixed, Mixed")
		preserve   = flag.Bool("preserve", true, "enable block-preserving merges")
		k0         = flag.Int("k0", 64, "memtable capacity in blocks")
		delta      = flag.Float64("delta", 0.07, "partial merge rate")
		metrics    = flag.String("metrics", "", "serve /metrics and /debug on this address (e.g. 127.0.0.1:8080)")
		compaction = flag.String("compaction", "sync", "merge scheduling: sync (cascades run inline) or background (scheduler goroutine with write stalls)")
		walOn      = flag.Bool("wal", false, "enable the write-ahead log for crash durability (requires -path)")
		walSync    = flag.String("sync", "every", "WAL sync policy: every, interval, or never")
		scrub      = flag.Duration("scrub", 0, "background corruption-scrub interval per shard (0 disables), e.g. 5s")
	)
	flag.Parse()

	pol, ok := map[string]lsmssd.Policy{
		"Full": lsmssd.Full, "RR": lsmssd.RR, "ChooseBest": lsmssd.ChooseBest,
		"TestMixed": lsmssd.TestMixed, "Mixed": lsmssd.Mixed,
	}[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "lsmkv: unknown policy %q\n", *policy)
		os.Exit(1)
	}
	mode, ok := map[string]lsmssd.CompactionMode{
		"sync": lsmssd.SyncCompaction, "background": lsmssd.BackgroundCompaction,
	}[*compaction]
	if !ok {
		fmt.Fprintf(os.Stderr, "lsmkv: unknown compaction mode %q (sync or background)\n", *compaction)
		os.Exit(1)
	}
	sync, ok := map[string]lsmssd.SyncPolicy{
		"every": lsmssd.SyncEvery, "interval": lsmssd.SyncInterval, "never": lsmssd.SyncNever,
	}[*walSync]
	if !ok {
		fmt.Fprintf(os.Stderr, "lsmkv: unknown WAL sync policy %q (every, interval, or never)\n", *walSync)
		os.Exit(1)
	}
	db, err := lsmssd.Open(lsmssd.Options{
		Path:            *path,
		Shards:          *shards,
		MergePolicy:     pol,
		DisablePreserve: !*preserve,
		MemtableBlocks:  *k0,
		Delta:           *delta,
		MetricsAddr:     *metrics,
		CompactionMode:  mode,
		WAL:             lsmssd.WALOptions{Enabled: *walOn, Sync: sync},
		ScrubInterval:   *scrub,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsmkv: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()
	if *metrics != "" {
		fmt.Fprintf(os.Stderr, "lsmkv: metrics on http://%s/metrics (also /debug/lsm, /debug/pprof)\n", db.MetricsAddr())
	}
	// Waste warnings (a level's waste factor nearing its ε bound) and
	// background write stalls land on stderr as they happen, so the prompt
	// stays usable. Stop stalls always print; slowdowns are rate-limited
	// to one line a second (a churn can trip thousands).
	var lastSlowdown atomic.Int64
	db.Subscribe(func(ev lsmssd.Event) {
		switch e := ev.(type) {
		case lsmssd.WarnEvent:
			fmt.Fprintf(os.Stderr, "lsmkv: warning: %s\n", e.Message)
		case lsmssd.StallEvent:
			if e.Kind == "slowdown" {
				now := time.Now().UnixNano()
				last := lastSlowdown.Load()
				if now-last < int64(time.Second) || !lastSlowdown.CompareAndSwap(last, now) {
					return
				}
			}
			fmt.Fprintf(os.Stderr, "lsmkv: write stall (%s): L0 at %d blocks (trigger %d), waited %v\n",
				e.Kind, e.L0Blocks, e.Trigger, e.Duration)
		case lsmssd.HealthEvent:
			msg := fmt.Sprintf("lsmkv: shard %d health: %s -> %s (%s)", e.Shard, e.From, e.To, e.Cause)
			if e.Err != "" {
				msg += ": " + e.Err
			}
			fmt.Fprintln(os.Stderr, msg)
		case lsmssd.ScrubEvent:
			if e.Corrupt > 0 || e.Quarantined > 0 {
				fmt.Fprintf(os.Stderr, "lsmkv: scrub shard %d: %d checked, %d corrupt, %d repaired, %d quarantined (%v)\n",
					e.Shard, e.Checked, e.Corrupt, e.Repaired, e.Quarantined, e.Duration)
			}
		}
	})

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(db, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func dispatch(db *lsmssd.DB, f []string) error {
	argN := func(i int) (uint64, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("missing argument %d", i)
		}
		return strconv.ParseUint(f[i], 10, 64)
	}
	switch f[0] {
	case "quit", "exit":
		return errQuit
	case "help":
		fmt.Println("put get del scan fill churn stats levels hist health validate quit")
	case "put":
		k, err := argN(1)
		if err != nil {
			return err
		}
		if len(f) < 3 {
			return fmt.Errorf("put <key> <value>")
		}
		return db.Put(k, []byte(strings.Join(f[2:], " ")))
	case "get":
		k, err := argN(1)
		if err != nil {
			return err
		}
		v, ok, err := db.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
		} else {
			fmt.Printf("%s\n", v)
		}
	case "del":
		k, err := argN(1)
		if err != nil {
			return err
		}
		return db.Delete(k)
	case "scan":
		lo, err := argN(1)
		if err != nil {
			return err
		}
		hi, err := argN(2)
		if err != nil {
			return err
		}
		n := 0
		err = db.Scan(lo, hi, func(k uint64, v []byte) bool {
			fmt.Printf("%d = %s\n", k, v)
			n++
			return n < 1000
		})
		fmt.Printf("(%d records)\n", n)
		return err
	case "fill", "churn":
		n, err := argN(1)
		if err != nil {
			return err
		}
		seed := int64(1)
		if s, err := argN(2); err == nil {
			seed = int64(s)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := uint64(0); i < n; i++ {
			k := rng.Uint64() % 1_000_000_000
			if f[0] == "churn" && rng.Intn(2) == 0 {
				if err := db.Delete(k); err != nil {
					return err
				}
				continue
			}
			if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				return err
			}
		}
		fmt.Printf("applied %d requests\n", n)
	case "stats":
		s := db.Stats()
		fmt.Printf("height=%d records=%d writes=%d reads=%d live=%d merges=%d (full=%d)\n",
			s.Height, s.Records, s.BlocksWritten, s.BlocksRead, s.LiveBlocks, s.Merges, s.FullMerges)
	case "levels":
		for _, l := range db.Stats().Levels {
			fmt.Printf("L%d: %6d/%6d blocks %8d records waste=%.3f written=%d compactions=%d\n",
				l.Level, l.Blocks, l.CapacityBlocks, l.Records, l.WasteFactor, l.BlocksWritten, l.Compactions)
		}
	case "hist":
		lvl, err := argN(1)
		if err != nil {
			return err
		}
		n, err := argN(2)
		if err != nil {
			return err
		}
		h, err := db.Histogram(int(lvl), 1_000_000_000, int(n))
		if err != nil {
			return err
		}
		for i, frac := range h {
			fmt.Printf("%3d %6.4f %s\n", i, frac, strings.Repeat("#", int(frac*400)))
		}
	case "health":
		hr := db.Health()
		fmt.Printf("overall: %s\n", hr.State)
		for _, sh := range hr.Shards {
			line := fmt.Sprintf("shard %d: %s", sh.Shard, sh.State)
			if sh.Cause != "" {
				line += " (" + sh.Cause + ")"
			}
			if sh.Err != "" {
				line += ": " + sh.Err
			}
			fmt.Println(line)
			for _, q := range sh.Quarantined {
				fmt.Printf("  quarantined block %d at L%d: %s\n", q.Block, q.Level, q.Reason)
			}
		}
	case "validate":
		if err := db.Validate(); err != nil {
			return err
		}
		fmt.Println("ok")
	default:
		return fmt.Errorf("unknown command %q (try help)", f[0])
	}
	return nil
}
