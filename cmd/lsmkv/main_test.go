package main

import (
	"strings"
	"testing"

	"lsmssd"
)

func testDB(t *testing.T) *lsmssd.DB {
	t.Helper()
	db, err := lsmssd.Open(lsmssd.Options{
		RecordsPerBlock: 8,
		MemtableBlocks:  2,
		Gamma:           4,
		Delta:           0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func do(t *testing.T, db *lsmssd.DB, line string) error {
	t.Helper()
	return dispatch(db, strings.Fields(line))
}

func TestDispatchBasicCommands(t *testing.T) {
	db := testDB(t)
	for _, line := range []string{
		"put 1 hello world",
		"put 2 x",
		"get 1",
		"get 999",
		"del 2",
		"scan 0 100",
		"fill 500 7",
		"churn 500 8",
		"stats",
		"levels",
		"hist 1 10",
		"validate",
		"help",
	} {
		if err := do(t, db, line); err != nil {
			t.Errorf("%q: %v", line, err)
		}
	}
	v, ok, err := db.Get(1)
	if err != nil || !ok || string(v) != "hello world" {
		t.Errorf("put did not store multiword value: %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get(2); ok {
		t.Error("del did not delete")
	}
}

func TestDispatchErrors(t *testing.T) {
	db := testDB(t)
	for _, line := range []string{
		"put",        // missing key
		"put 1",      // missing value
		"get",        // missing key
		"scan 5",     // missing hi
		"bogus",      // unknown command
		"put abc x",  // non-numeric key
		"hist 99 10", // absent level
	} {
		if err := do(t, db, line); err == nil {
			t.Errorf("%q: expected error", line)
		}
	}
}

func TestDispatchQuit(t *testing.T) {
	db := testDB(t)
	if err := do(t, db, "quit"); err != errQuit {
		t.Errorf("quit returned %v", err)
	}
	if err := do(t, db, "exit"); err != errQuit {
		t.Errorf("exit returned %v", err)
	}
}
