// Command obssmoke is the end-to-end observability smoke test behind
// `make obs-smoke`: it opens a store with the metrics endpoint on an
// ephemeral port, drives enough writes to force merges through several
// levels, scrapes /metrics, and fails unless every required metric family
// is present and /debug/lsm parses. CI runs it on every push.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"lsmssd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obs-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := lsmssd.Open(lsmssd.Options{
		MetricsAddr:     "127.0.0.1:0",
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.25,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	var merges atomic.Int64 // delivered on the bus's dispatcher goroutine
	cancel := db.Subscribe(func(ev lsmssd.Event) {
		if _, ok := ev.(lsmssd.MergeEvent); ok {
			merges.Add(1)
		}
	})
	defer cancel()

	for i := uint64(0); i < 20_000; i++ {
		if err := db.Put(i*2654435761%1_000_000, []byte("obs-smoke payload")); err != nil {
			return err
		}
	}
	if _, _, err := db.Get(42); err != nil {
		return err
	}

	addr := db.MetricsAddr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned status %d", resp.StatusCode)
	}
	text := string(body)

	required := []string{
		"lsmssd_blocks_written_total",
		"lsmssd_blocks_read_total",
		"lsmssd_live_blocks",
		"lsmssd_requests_total",
		"lsmssd_merges_total",
		"lsmssd_height",
		"lsmssd_level_blocks",
		"lsmssd_level_waste_factor",
		"lsmssd_level_blocks_written_total",
		"lsmssd_event_drops_total",
		"lsmssd_op_duration_seconds_bucket",
		"lsmssd_op_duration_seconds_sum",
		"lsmssd_op_duration_seconds_count",
		// Compaction-scheduler families: always exported (zeros in sync
		// mode) so dashboards need no mode-conditional queries.
		"lsmssd_compaction_queue_depth",
		"lsmssd_compaction_steps_total",
		"lsmssd_write_stalls_total",
		"lsmssd_write_stall_seconds_total",
	}
	var missing []string
	for _, fam := range required {
		if !strings.Contains(text, fam) {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("/metrics is missing families: %s", strings.Join(missing, ", "))
	}

	resp, err = http.Get("http://" + addr + "/debug/lsm")
	if err != nil {
		return err
	}
	var dump struct {
		Height int   `json:"height"`
		Levels []any `json:"levels"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("/debug/lsm: %w", err)
	}
	if dump.Height < 3 || len(dump.Levels) < 2 {
		return fmt.Errorf("/debug/lsm implausible: height=%d levels=%d", dump.Height, len(dump.Levels))
	}

	// The latency-attribution endpoints must serve valid JSON even on a
	// store with tracing off: an empty slow ring and a (possibly still
	// empty) flight-recorder timeline. The full traced path is exercised
	// by `lsmbench -timeline` in the same make target.
	resp, err = http.Get("http://" + addr + "/debug/lsm/timeline")
	if err != nil {
		return err
	}
	var timeline [][]lsmssd.TimelineSample
	err = json.NewDecoder(resp.Body).Decode(&timeline)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("/debug/lsm/timeline: %w", err)
	}
	resp, err = http.Get("http://" + addr + "/debug/lsm/slow")
	if err != nil {
		return err
	}
	var slow []lsmssd.SpanEvent
	err = json.NewDecoder(resp.Body).Decode(&slow)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("/debug/lsm/slow: %w", err)
	}
	if merges.Load() == 0 {
		return fmt.Errorf("no merge events observed over 20k inserts")
	}

	fmt.Printf("obs-smoke: ok — %d families on http://%s/metrics, height %d, %d merges observed\n",
		len(required), addr, dump.Height, merges.Load())
	return backgroundPhase()
}

// backgroundPhase smoke-tests the background compaction scheduler's
// observability: drive a tiny-triggered store until admission actually
// stalls, then require the stall counters to be live on /metrics.
func backgroundPhase() error {
	db, err := lsmssd.Open(lsmssd.Options{
		MetricsAddr:     "127.0.0.1:0",
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.25,
		CompactionMode:  lsmssd.BackgroundCompaction,
		SlowdownTrigger: 4,
		StopTrigger:     6,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	var stallEvents atomic.Int64
	cancel := db.Subscribe(func(ev lsmssd.Event) {
		if _, ok := ev.(lsmssd.StallEvent); ok {
			stallEvents.Add(1)
		}
	})
	defer cancel()

	stalled := func() int64 {
		c := db.Stats().Compaction
		return c.Slowdowns + c.Stops
	}
	for i := uint64(0); i < 200_000 && stalled() == 0; i++ {
		if err := db.Put(i*2654435761%1_000_000, []byte("obs-smoke payload")); err != nil {
			return err
		}
	}
	if stalled() == 0 {
		return fmt.Errorf("background mode: 200k writes against a 4-block L0 never tripped backpressure")
	}
	// The bus delivers asynchronously on its dispatcher goroutine; give it
	// a moment to drain before requiring the event.
	deadline := time.Now().Add(5 * time.Second)
	for stallEvents.Load() == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("background mode: stalls counted but no StallEvent reached the bus")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + db.MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	text := string(body)
	// The counters must be live, not just declared: at least one stall
	// sample with a nonzero value.
	live := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "lsmssd_write_stalls_total{") && !strings.HasSuffix(line, " 0") {
			live = true
			break
		}
	}
	if !live {
		return fmt.Errorf("background mode: stalls happened but lsmssd_write_stalls_total samples are all zero")
	}
	c := db.Stats().Compaction
	fmt.Printf("obs-smoke: background ok — %d slowdowns, %d stops, %d stall events, %d cascade steps\n",
		c.Slowdowns, c.Stops, stallEvents.Load(), c.Steps)
	return nil
}
