package main

// The -timeline mode drives sustained mixed load against a file-backed,
// WAL-synced, background-compaction store with phase tracing and the
// flight recorder on, then dumps the per-shard timeline, the slow-op
// ring, and end-of-run totals as one JSON artifact (BENCH_timeline.json
// via the Makefile). This is the latency-over-time evidence the
// paced-compaction work is gated on: stall windows in the timeline
// should visibly align with put p99 spikes, the way Luo & Carey's
// stability study reads LSM write cliffs.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lsmssd"
	"lsmssd/internal/obs"
)

// timelineDoc is the JSON document -timeline emits.
type timelineDoc struct {
	Params   timelineParams            `json:"params"`
	Totals   timelineTotals            `json:"totals"`
	Timeline [][]lsmssd.TimelineSample `json:"timeline"`
	SlowOps  []slowOp                  `json:"slow_ops"`
}

type timelineParams struct {
	Shards          int   `json:"shards"`
	Writers         int   `json:"writers"`
	Readers         int   `json:"readers"`
	DurationNS      int64 `json:"duration_ns"`
	Seed            int64 `json:"seed"`
	TraceSampleRate int   `json:"trace_sample_rate"`
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	IntervalNS      int64 `json:"interval_ns"`
}

type timelineTotals struct {
	Ops           int64 `json:"ops"`
	Ticks         int   `json:"ticks"`
	StallTicks    int   `json:"stall_ticks"`    // ticks with at least one stall event
	MaxPutP99NS   int64 `json:"max_put_p99_ns"` // worst per-tick put p99 across shards
	SlowOps       int   `json:"slow_ops"`
	BlocksWritten int64 `json:"blocks_written"`
}

// slowOp is a SpanEvent rendered with string labels for the artifact.
type slowOp struct {
	Op             string           `json:"op"`
	Shard          int              `json:"shard"`
	StartUnixNanos int64            `json:"start_unix_nanos"`
	TotalNS        int64            `json:"total_ns"`
	PhasesNS       map[string]int64 `json:"phases_ns"`
}

// runTimeline executes the sustained-load workload for dur and writes the
// artifact to path.
func runTimeline(path string, dur time.Duration, seed int64) error {
	dir, err := os.MkdirTemp("", "lsmbench-timeline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const (
		writers  = 6
		readers  = 2
		keySpace = 1 << 20
		interval = 250 * time.Millisecond
	)
	opts := lsmssd.Options{
		Path:             filepath.Join(dir, "store.db"),
		Shards:           2,
		RecordsPerBlock:  32,
		MemtableBlocks:   8,
		CompactionMode:   lsmssd.BackgroundCompaction,
		WAL:              lsmssd.WALOptions{Enabled: true, Sync: lsmssd.SyncEvery},
		Metrics:          true,
		TraceSampleRate:  64,
		SlowOpThreshold:  5 * time.Millisecond,
		TimelineInterval: interval,
	}
	db, err := lsmssd.Open(opts)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if closed {
			return
		}
		if cerr := db.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "lsmbench: timeline: close:", cerr)
		}
	}()

	payload := make([]byte, 100)
	var stop atomic.Bool
	var ops atomic.Int64
	errs := make([]error, writers+readers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*7919))
			for !stop.Load() {
				if err := db.Put(uint64(rng.Intn(keySpace)), payload); err != nil {
					errs[g] = err
					return
				}
				ops.Add(1)
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(writers+g)*7919))
			for !stop.Load() {
				if _, _, err := db.Get(uint64(rng.Intn(keySpace))); err != nil {
					errs[writers+g] = err
					return
				}
				ops.Add(1)
			}
		}(g)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Let the recorder take one more tick so the tail of the run is in the
	// timeline, then read everything before Close stops the recorder.
	time.Sleep(interval + interval/2)
	timeline := db.Timeline()
	slow := db.SlowOps()
	stats := db.Stats()
	closed = true
	if err := db.Close(); err != nil {
		return err
	}

	totals := timelineTotals{
		Ops:           ops.Load(),
		SlowOps:       len(slow),
		BlocksWritten: stats.BlocksWritten,
	}
	for _, shardLine := range timeline {
		totals.Ticks += len(shardLine)
		for _, s := range shardLine {
			if s.Stalls > 0 {
				totals.StallTicks++
			}
			if s.PutP99NS > totals.MaxPutP99NS {
				totals.MaxPutP99NS = s.PutP99NS
			}
		}
	}
	slowOut := make([]slowOp, 0, len(slow))
	for _, ev := range slow {
		phases := make(map[string]int64, len(ev.Phases))
		for p, d := range ev.Phases {
			if d > 0 {
				phases[obs.Phase(p).String()] = int64(d)
			}
		}
		slowOut = append(slowOut, slowOp{
			Op:             ev.Op.String(),
			Shard:          ev.Shard,
			StartUnixNanos: ev.Start.UnixNano(),
			TotalNS:        int64(ev.Total),
			PhasesNS:       phases,
		})
	}
	doc := timelineDoc{
		Params: timelineParams{
			Shards:          opts.Shards,
			Writers:         writers,
			Readers:         readers,
			DurationNS:      int64(dur),
			Seed:            seed,
			TraceSampleRate: opts.TraceSampleRate,
			SlowThresholdNS: int64(opts.SlowOpThreshold),
			IntervalNS:      int64(interval),
		},
		Totals:   totals,
		Timeline: timeline,
		SlowOps:  slowOut,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lsmbench: timeline: %d ops, %d ticks (%d with stalls), max put p99 %s, %d slow ops -> %s\n",
		totals.Ops, totals.Ticks, totals.StallTicks,
		time.Duration(totals.MaxPutP99NS).Round(time.Microsecond), totals.SlowOps, path)
	return nil
}
