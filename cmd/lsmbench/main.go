// Command lsmbench regenerates the evaluation of Thonangi & Yang, "On
// Log-Structured Merge for Solid-State Drives" (ICDE 2017): every figure
// of Section V, as tables on stdout (or CSV files with -csv).
//
// Sizes are the paper's, scaled by -scale (default 0.05) with the level
// geometry preserved; absolute writes/MB therefore differ from the paper,
// but orderings, gaps, and crossovers are comparable. Use -quick for a
// fast smoke pass, or -scale 1 to run the original sizes.
//
// Usage:
//
//	lsmbench -fig 6            # regenerate Figure 6 (a, b and c)
//	lsmbench -fig all -csv out # everything, as CSV files under out/
//	lsmbench -fig 6 -trace t.jsonl # also record the per-merge event trace
//	lsmbench -workload all     # layout sweep: leveling vs tiering vs lazy
//	lsmbench -workload scan -layout tiering,lazy -tier-runs 8
//
// -workload replaces the figure run with the layout comparison: each
// selected layout is measured on delete-heavy, scan-heavy, and uniform
// request mixes, reporting blocks written and read per MB of requests.
//
// With -trace, every merge, flush, growth, and warning event of every run
// is appended to the file as one JSON line ({"type":"merge","event":{...}}),
// and measurement windows are bracketed by "run" marker lines carrying the
// device write counter — summing the merge events' write fields between a
// window's markers reproduces that counter exactly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"lsmssd/internal/experiments"
	"lsmssd/internal/obs"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: 1-10, 'queries', or 'all'")
		scale = flag.Float64("scale", 0.05, "size scale relative to the paper (1.0 = paper sizes)")
		seed  = flag.Int64("seed", 1, "random seed")
		csv   = flag.String("csv", "", "write CSV files into this directory instead of text to stdout")
		quick = flag.Bool("quick", false, "fewer sizes per figure (smoke pass)")
		trace = flag.String("trace", "", "append the per-merge JSONL event trace to this file")

		timeline = flag.String("timeline", "", "instead of a figure, drive the sustained-load latency-attribution workload and write its JSON artifact here (e.g. BENCH_timeline.json)")
		tdur     = flag.Duration("timeline-dur", 8*time.Second, "measured duration of the -timeline workload")

		workloadF = flag.String("workload", "", "instead of a figure, run the layout sweep on these workloads: uniform, delete, scan, a comma list, or all")
		layoutF   = flag.String("layout", "all", "layouts for the -workload sweep: leveling, tiering, lazy, a comma list, or all")
		tierRuns  = flag.Int("tier-runs", 4, "run budget T for tiered layouts in the -workload sweep")
	)
	flag.Parse()

	// The harness allocates heavily but briefly (merge outputs, payload
	// buffers); a relaxed GC target trades memory for wall-clock time.
	debug.SetGCPercent(400)

	if *timeline != "" {
		if err := runTimeline(*timeline, *tdur, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: timeline: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p := experiments.Params{Scale: *scale, Seed: *seed}.WithDefaults()

	if *workloadF != "" {
		if err := runWorkloadSweep(p, *workloadF, *layoutF, *tierRuns, *quick, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: workload sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: %v\n", err)
			os.Exit(1)
		}
		// Buffer the file and give the ring real depth: the sink must keep
		// up with merge bursts or events drop and the trace's write sums no
		// longer reproduce the device counters.
		bw := bufio.NewWriterSize(f, 1<<20)
		sink := obs.NewJSONLSink(bw)
		bus := obs.NewBus(1 << 16)
		bus.Subscribe(sink)
		p.Bus = bus
		defer func() {
			bus.Close() // drains pending events into the sink
			if n := bus.Drops(); n > 0 {
				fmt.Fprintf(os.Stderr, "lsmbench: trace: %d events dropped (sink too slow); write sums will not reproduce device counters\n", n)
			}
			if err := sink.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "lsmbench: trace: %v\n", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "lsmbench: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lsmbench: trace: %v\n", err)
			}
		}()
	}
	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "queries"}
	}
	for _, f := range figs {
		start := time.Now()
		tables, err := run(p, strings.TrimSpace(f), *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := emit(t, *csv); err != nil {
				fmt.Fprintf(os.Stderr, "lsmbench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "lsmbench: figure %s done in %s\n", f, time.Since(start).Round(time.Millisecond))
	}
}

// runWorkloadSweep runs the layout × workload comparison (-workload):
// write-amp and read-amp per layout on the workloads that differentiate
// them.
func runWorkloadSweep(p experiments.Params, workloadF, layoutF string, tierRuns int, quick bool, csvDir string) error {
	layouts, err := experiments.ParseLayouts(layoutF, tierRuns)
	if err != nil {
		return err
	}
	workloads, err := experiments.ParseWorkloads(workloadF)
	if err != nil {
		return err
	}
	datasetMB, windowMB := 50.0, 25.0
	if quick {
		datasetMB, windowMB = 16.0, 8.0
	}
	_, t, err := p.LayoutSweep(layouts, workloads, datasetMB, windowMB)
	if err != nil {
		return err
	}
	return emit(t, csvDir)
}

func run(p experiments.Params, fig string, quick bool) ([]*experiments.Table, error) {
	switch fig {
	case "1":
		_, t, err := p.Fig1(100)
		return []*experiments.Table{t}, err
	case "2":
		ta, err := p.Fig2(experiments.Uniform)
		if err != nil {
			return nil, err
		}
		tb, err := p.Fig2(experiments.Normal)
		return []*experiments.Table{ta, tb}, err
	case "3":
		_, t, err := p.Fig3([]string{"Full", "ChooseBest"}, pick(quick, 50, 250), pick(quick, 10, 2.5))
		return []*experiments.Table{t}, err
	case "4":
		_, t, err := p.Fig3([]string{"Full", "ChooseBest", "TestMixed"}, pick(quick, 50, 250), pick(quick, 10, 2.5))
		return []*experiments.Table{t}, err
	case "5":
		ta, err := p.Fig5(experiments.Uniform)
		if err != nil {
			return nil, err
		}
		tb, err := p.Fig5(experiments.Normal)
		return []*experiments.Table{ta, tb}, err
	case "6":
		var sizesU, sizesT []float64
		if quick {
			sizesU = []float64{200, 800, 1400, 2000}
			sizesT = []float64{200, 1500, 3000, 8000}
		}
		ta, err := p.Fig6(experiments.Uniform, sizesU)
		if err != nil {
			return nil, err
		}
		tb, err := p.Fig6(experiments.Normal, sizesU)
		if err != nil {
			return nil, err
		}
		tc, err := p.Fig6(experiments.TPC, sizesT)
		return []*experiments.Table{ta, tb, tc}, err
	case "7":
		var sizes []float64
		if quick {
			sizes = []float64{200, 2000}
		}
		t, err := p.Fig7(sizes)
		return []*experiments.Table{t}, err
	case "8":
		var pcts []float64
		if quick {
			pcts = []float64{0.005, 1, 20}
		}
		t, err := p.Fig8(pcts)
		return []*experiments.Table{t}, err
	case "9":
		var payloads []float64
		if quick {
			payloads = []float64{25, 1000, 4000}
		}
		t, err := p.Fig9(payloads)
		return []*experiments.Table{t}, err
	case "10":
		var cps []float64
		if quick {
			cps = []float64{500, 1000, 1500, 2000}
		}
		t, err := p.Fig10(cps)
		return []*experiments.Table{t}, err
	case "q", "queries":
		var pols []string
		if quick {
			pols = []string{"Full-P", "ChooseBest", "Mixed"}
		}
		t, err := p.QueryOverhead(pols, 300)
		return []*experiments.Table{t}, err
	}
	return nil, fmt.Errorf("unknown figure %q (want 1-10 or queries)", fig)
}

func pick(quick bool, q, full float64) float64 {
	if quick {
		return q
	}
	return full
}

func emit(t *experiments.Table, csvDir string) error {
	if csvDir == "" {
		_, err := t.WriteTo(os.Stdout)
		fmt.Println()
		return err
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, t.Title)
	if len(name) > 60 {
		name = name[:60]
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(os.Stdout, "wrote %s\n", f.Name())
	return t.CSV(f)
}
