package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lsmssd/internal/experiments"
)

func tinyParams() experiments.Params {
	return experiments.Params{Scale: 0.002, Seed: 3}.WithDefaults()
}

func TestRunFigureDispatch(t *testing.T) {
	p := tinyParams()
	// Only the cheap figures; the expensive ones share the exact same
	// code path through experiments and are covered there and by the
	// benchmarks.
	for _, fig := range []string{"1", "3"} {
		tables, err := run(p, fig, true)
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(tables) == 0 {
			t.Fatalf("fig %s: no tables", fig)
		}
		for _, tab := range tables {
			if tab.Title == "" || len(tab.Rows) == 0 {
				t.Errorf("fig %s: empty table %+v", fig, tab.Title)
			}
		}
	}
	if _, err := run(p, "42", false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestEmitText(t *testing.T) {
	tab := &experiments.Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	if err := emit(tab, ""); err != nil {
		t.Fatal(err)
	}
}

func TestEmitCSV(t *testing.T) {
	dir := t.TempDir()
	tab := &experiments.Table{
		Title:  "Figure X: some / strange? title with a very long tail that should be truncated safely 1234567890",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	if err := emit(tab, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	name := entries[0].Name()
	if !strings.HasSuffix(name, ".csv") || strings.ContainsAny(name, "/? ") {
		t.Errorf("bad file name %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content %q", data)
	}
}

func TestPick(t *testing.T) {
	if pick(true, 1, 2) != 1 || pick(false, 1, 2) != 2 {
		t.Error("pick broken")
	}
}
