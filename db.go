package lsmssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lsmssd/internal/block"
	"lsmssd/internal/histogram"
	"lsmssd/internal/obs"
	"lsmssd/internal/storage"
)

// ErrClosed is returned by every DB operation issued after Close.
var ErrClosed = errors.New("lsmssd: database is closed")

// ErrCorrupt is returned when a data block read back from the device
// fails its integrity checksum — a torn write, bit rot, or external
// damage. The engine surfaces it through Get, Scan, iterators, and merge
// paths rather than treating the block as absent, so corruption is always
// loud. Test with errors.Is.
var ErrCorrupt = storage.ErrCorrupt

// DB is a key-value store backed by the paper's LSM-tree. All methods are
// safe for concurrent use.
//
// Sharding: with Options.Shards = N > 1 the DB is a router over N
// independent LSM trees. Each key belongs to exactly one shard — chosen
// by key & (N-1) — which owns its own memtable, storage levels, device
// file, write-ahead log, and compaction scheduler. Point operations touch
// only the owning shard; Scan and NewIterator merge per-shard snapshots
// into one globally ordered stream; Stats, Validate, Checkpoint, Close
// fan out and aggregate. With the default Shards = 1 the DB is exactly
// the single-tree engine, byte-for-byte on disk.
//
// Concurrency model: mutations (Put, Delete, Apply, Checkpoint, TuneMixed)
// are serialized by a per-shard writer lock — writes to different shards
// proceed in parallel — while reads (Get, Scan, NewIterator, Stats,
// Histogram, Validate) run lock-free against immutable per-shard
// snapshots published after every mutation and every merge. Readers
// therefore never wait for a merge cascade, and an in-progress Scan or
// Iterator observes a frozen, consistent state no matter how many merges
// complete meanwhile.
//
// Merge scheduling: mutations land records in the owning shard's L0 and
// hand overflow work to that shard's compaction scheduler
// (internal/compaction) — inline in the mutating call under
// SyncCompaction (the default), or on a background goroutine under
// BackgroundCompaction, with write-stall backpressure when compaction
// falls behind. No merge is ever initiated from this layer directly.
type DB struct {
	closed atomic.Bool
	opts   Options

	// shards holds the per-key-partition engines; len(shards) is a power
	// of two and mask is len(shards)-1, so shardFor is a single AND.
	shards []*shard
	mask   uint64

	// Observability (see metrics.go), shared by every shard so one bus
	// subscription and one metrics endpoint observe the whole DB (events
	// carry a Shard field). bus, lat, and tracer always exist; lat records
	// only when Options.Metrics (or MetricsAddr) enabled it, the tracer is
	// inert unless TraceSampleRate or SlowOpThreshold is set, and the bus
	// constructs no events until a sink subscribes. lat holds the
	// router-level series (multi-shard ops like Scan); point ops record
	// into the owning shard's set and Stats merges them. metrics is the
	// HTTP endpoint, nil unless Options.MetricsAddr is set; recorder is
	// the flight recorder's ticker goroutine, nil unless Metrics is on,
	// stopped exactly once (recOnce) before shard teardown so its
	// collector never observes a half-closed shard.
	bus      *obs.Bus
	lat      *obs.LatencySet
	tracer   *obs.Tracer
	metrics  *obs.Server
	recorder *obs.Recorder
	recOnce  sync.Once
}

// Open creates or reopens a DB with the given options. An empty Options
// value yields an in-memory engine with the paper's defaults; invalid
// parameter combinations are rejected with an error naming the offending
// field (see Options.Validate).
//
// With Path set, Open looks for a manifest (Path + ".manifest") written by
// a previous Close or Checkpoint and, if present, restores the store from
// it; otherwise the file is created fresh. With Options.WAL enabled, Open
// then replays the write-ahead log over the restored state: every frame
// beyond the manifest's recorded sequence is re-applied, a torn tail left
// by a power cut is truncated at the first bad frame, and the recovered
// state is checkpointed before Open returns (Stats reports what the
// replay did). With the WAL disabled the manifest alone provides clean-
// shutdown persistence — a crash loses the requests since the last
// checkpoint — and Open refuses to run if it finds unreplayed WAL frames
// from an earlier WAL-enabled incarnation, rather than silently dropping
// acknowledged writes.
//
// With Shards > 1, every per-shard step above runs once per shard over
// that shard's files (shard 0 owns the Path-named files, shard i the
// ".shard<i>" variants). The shard count is recorded in each manifest;
// reopening an existing store with a different Options.Shards fails
// rather than routing keys to the wrong trees.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	db := &DB{opts: opts, bus: obs.NewBus(0), lat: &obs.LatencySet{}}
	db.lat.Enable(opts.Metrics)
	db.tracer = obs.NewTracer(db.bus, opts.Shards, opts.TraceSampleRate, opts.SlowOpThreshold)
	db.mask = uint64(opts.Shards - 1)
	db.shards = make([]*shard, 0, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		s, err := db.openShard(i)
		if err != nil {
			return nil, errors.Join(shardErr(i, err), db.abortOpen())
		}
		db.shards = append(db.shards, s)
	}
	return db.startObs()
}

// abortOpen tears down the shards a failed Open managed to bring up, in
// the same order Close would: schedulers and scrubbers first (their
// goroutines need the writer locks), then WALs and devices, then the bus.
func (db *DB) abortOpen() error {
	var errs []error
	for _, s := range db.shards {
		s.sched.Stop()
		s.stopScrub()
	}
	for _, s := range db.shards {
		s.writerMu.Lock()
		if s.wal != nil {
			errs = append(errs, shardErr(s.id, s.wal.Close()))
		}
		s.tree.MarkClosed()
		errs = append(errs, shardErr(s.id, s.raw.Close()))
		s.writerMu.Unlock()
	}
	db.bus.Close()
	return errors.Join(errs...)
}

func manifestPath(path string) string { return path + ".manifest" }
func walBase(path string) string      { return path + ".wal" }

// shardErr attributes err to its shard. Fan-out paths (Close, Crash,
// Checkpoint, Validate, abortOpen) aggregate per-shard failures with
// errors.Join; without the index a multi-shard teardown error would not
// say which fault domain each failure belongs to.
func shardErr(id int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("shard %d: %w", id, err)
}

// shardFor routes a key to its owning shard: the low bits of the key
// select one of the power-of-two shards.
func (db *DB) shardFor(key uint64) *shard {
	return db.shards[key&db.mask]
}

// lockAllShards acquires every shard's writer lock in ascending shard
// order — the one sanctioned way to hold more than one (the
// shard-lock-order lint rule enforces both the ordering here and the
// absence of nesting everywhere else). The returned unlock releases them
// all; callers must not interleave other lock acquisitions.
func (db *DB) lockAllShards() (unlock func()) {
	unlocks := make([]func(), len(db.shards))
	for i, s := range db.shards {
		s.writerMu.Lock()
		unlocks[i] = s.writerMu.Unlock
	}
	return func() {
		for _, u := range unlocks {
			u()
		}
	}
}

// Checkpoint atomically persists the store's metadata (level indexes and
// memtable contents) to the per-shard manifests, so a subsequent Open
// restores the current state. Shards checkpoint one at a time — each
// shard's checkpoint is atomic for its own keys, and WAL replay covers
// any shard that crashes between its siblings' checkpoints. Only
// meaningful for file-backed stores; a no-op without Path.
func (db *DB) Checkpoint() error {
	for _, s := range db.shards {
		if err := s.checkpoint(); err != nil {
			return shardErr(s.id, err)
		}
	}
	return nil
}

// Put inserts or updates the value stored for key. Under background
// compaction Put may pace or stall when the owning shard's L0 reaches the
// configured triggers, and reports any merge error that shard's scheduler
// parked since the previous write.
func (db *DB) Put(key uint64, value []byte) error {
	s := db.shardFor(key)
	start := s.lat.Start()
	sp := db.tracer.Start(obs.OpPut, s.id)
	err := s.put(key, value, sp)
	sp.Finish()
	s.lat.Done(obs.OpPut, start)
	return err
}

// Delete removes key. Deleting an absent key is a no-op that still costs a
// logged tombstone, as in any LSM store.
func (db *DB) Delete(key uint64) error {
	s := db.shardFor(key)
	start := s.lat.Start()
	sp := db.tracer.Start(obs.OpDelete, s.id)
	err := s.delete(key, sp)
	sp.Finish()
	s.lat.Done(obs.OpDelete, start)
	return err
}

// Get returns the value stored for key. It runs against the owning
// shard's current snapshot without taking any writer lock, so concurrent
// Gets scale across cores even while merges run.
func (db *DB) Get(key uint64) (value []byte, found bool, err error) {
	s := db.shardFor(key)
	start := s.lat.Start()
	sp := db.tracer.Start(obs.OpGet, s.id)
	defer func() {
		sp.Finish()
		s.lat.Done(obs.OpGet, start)
	}()
	v, err := s.acquireView()
	if err != nil {
		return nil, false, err
	}
	defer v.Release()
	value, found, err = v.GetTraced(block.Key(key), sp)
	if err != nil {
		// Corruption observed on the read path counts against the shard's
		// health (Degraded while writable, Failed once read-only).
		s.noteReadError(err)
	}
	return value, found, err
}

// Scan calls fn for each key in [lo, hi] in ascending order until fn
// returns false. The whole scan observes one snapshot per shard, acquired
// together up front: a merge or write that completes mid-scan does not
// change what the scan sees. Scan is a thin wrapper over the Iterator
// API, which merges the per-shard snapshots into one ordered stream.
func (db *DB) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpScan, start)
	// A scan crosses shards, so its span carries shard -1 and its phase
	// histograms are not shard-attributed; heap interleaving and block
	// fetches land in PhaseKWayMerge / PhaseCacheRead / PhaseDevRead, the
	// caller's fn in PhaseOther.
	sp := db.tracer.Start(obs.OpScan, -1)
	defer sp.Finish()
	it, err := db.NewIterator(lo, hi)
	if err != nil {
		return err
	}
	it.setSpan(sp)
	for {
		sp.To(obs.PhaseKWayMerge)
		ok := it.Next()
		sp.To(obs.PhaseOther)
		if !ok || !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Close()
}

// Close checkpoints a file-backed store and releases the DB's resources,
// including the metrics endpoint and the event bus (pending events are
// delivered to subscribed sinks before Close returns). Every operation
// issued after Close returns ErrClosed.
//
// Ordering: every shard's compaction scheduler is stopped first, before
// any writer lock is taken — the scheduler goroutines need their shard's
// lock to finish an in-flight merge step, and they must be quiescent
// before the devices and event bus go away. A cascade interrupted mid-way
// is completed on the next Open (the manifest round-trips over-capacity
// levels; Restore drains them). Any background merge error a scheduler
// parked is folded into Close's return.
func (db *DB) Close() error {
	for _, s := range db.shards {
		s.sched.Stop()
		s.stopScrub()
	}
	db.stopRecorder()
	unlock := db.lockAllShards()
	defer unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var errs []error
	if db.metrics != nil {
		errs = append(errs, db.metrics.Close())
		db.metrics = nil
	}
	db.bus.Close()
	db.closed.Store(true)
	for _, s := range db.shards {
		errs = append(errs, shardErr(s.id, s.sched.Err()), shardErr(s.id, s.closeLocked()))
	}
	return errors.Join(errs...)
}

// Crash abandons the DB as a power cut would: no checkpoint, no device
// sync, and write-ahead log frames buffered past the last policy-driven
// fsync are truncated, exactly as an OS page cache would lose them. A
// subsequent Open performs crash recovery from the last checkpoint plus
// the surviving WAL prefix, shard by shard. Crash exists for durability
// testing (the crash-loop harness drives it); production code wants
// Close. The returned error reports teardown problems only.
func (db *DB) Crash() error {
	for _, s := range db.shards {
		s.sched.Stop()
		s.stopScrub()
	}
	db.stopRecorder()
	unlock := db.lockAllShards()
	defer unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var errs []error
	if db.metrics != nil {
		errs = append(errs, db.metrics.Close())
		db.metrics = nil
	}
	db.bus.Close()
	db.closed.Store(true)
	for _, s := range db.shards {
		errs = append(errs, shardErr(s.id, s.crashLocked()))
	}
	return errors.Join(errs...)
}

// stopRecorder shuts the flight recorder's ticker goroutine down, once,
// before any shard teardown: the collector reads per-shard state (WAL
// statistics, scheduler snapshots) that closeLocked releases, so it must
// be quiescent first. Safe when the recorder never started.
func (db *DB) stopRecorder() {
	db.recOnce.Do(func() { db.recorder.Close() })
}

// Validate checks every internal invariant of every shard (level
// ordering, waste constraints, storage accounting). The structural checks
// run lock-free against each shard's current snapshot; only the
// device-accounting cross-check briefly takes that shard's writer lock.
// It does not perturb the I/O statistics.
func (db *DB) Validate() error {
	for _, s := range db.shards {
		if err := s.validate(); err != nil {
			return shardErr(s.id, err)
		}
	}
	return nil
}

// ForceGrow adds a storage level to every shard ahead of the bottom
// level's natural overflow. The paper notes that a relatively empty
// bottom level makes merges into it unusually cheap and leaves strategic
// level growth as an open direction; this exposes the experiment. Most
// applications should let the tree grow on its own.
func (db *DB) ForceGrow() {
	for _, s := range db.shards {
		s.forceGrow()
	}
}

// Histogram returns the normalized key-frequency histogram of storage
// level (1-based) over buckets equal subdivisions of [0, keySpace) — the
// paper's Figure 1 diagnostic, summed across shards. It reads from the
// current per-shard snapshots without blocking writers. Shards whose tree
// has not grown the requested level yet contribute nothing; the error is
// returned only if no shard has it.
func (db *DB) Histogram(level int, keySpace uint64, buckets int) ([]float64, error) {
	var total []int
	var firstErr error
	ok := false
	for _, s := range db.shards {
		v, err := s.acquireView()
		if err != nil {
			return nil, err
		}
		counts, err := histogram.ViewLevel(v, level, keySpace, buckets)
		v.Release()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
		if total == nil {
			total = counts
		} else {
			for i, c := range counts {
				total[i] += c
			}
		}
	}
	if !ok {
		return nil, firstErr
	}
	return histogram.Normalize(total), nil
}
