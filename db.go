package lsmssd

import (
	"errors"
	"fmt"
	"sync"

	"lsmssd/internal/block"
	"lsmssd/internal/core"
	"lsmssd/internal/histogram"
	"lsmssd/internal/invariant"
	"lsmssd/internal/manifest"
	"lsmssd/internal/storage"
)

// DB is a key-value store backed by the paper's LSM-tree. All methods are
// safe for concurrent use; operations are serialized internally (the
// paper's concurrency-control improvements are orthogonal to its merge
// contributions and are out of scope here).
type DB struct {
	mu   sync.Mutex
	opts Options
	tree *core.Tree
	raw  storage.Device // the unwrapped device, for Close
}

// Open creates or reopens a DB with the given options. An empty Options
// value yields an in-memory engine with the paper's defaults.
//
// With Path set, Open looks for a manifest (Path + ".manifest") written by
// a previous Close or Checkpoint and, if present, restores the store from
// it; otherwise the file is created fresh. The manifest provides clean-
// shutdown persistence, not crash durability — requests since the last
// checkpoint are lost on a crash (there is no write-ahead log; see the
// package documentation).
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	cfg := core.Config{
		Policy:          opts.buildPolicy(),
		BlockCapacity:   opts.RecordsPerBlock,
		K0:              opts.MemtableBlocks,
		Gamma:           opts.Gamma,
		Epsilon:         opts.Epsilon,
		CacheBlocks:     opts.CacheBlocks,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Seed:            opts.Seed,
	}
	if opts.Paranoid {
		// Mid-cascade audits tolerate in-flight records: a merge may land
		// in a level whose own overflow the cascade has not reached yet.
		cfg.Auditor = func(t *core.Tree) error {
			return invariant.Check(t, invariant.Options{MidCascade: true})
		}
	}

	if opts.Path != "" {
		st, err := manifest.Load(manifestPath(opts.Path))
		switch {
		case err == nil:
			return reopen(opts, cfg, st)
		case errors.Is(err, manifest.ErrNoManifest):
			// fresh store below
		default:
			return nil, err
		}
	}

	var dev storage.Device
	if opts.Path != "" {
		fd, err := storage.OpenFileDevice(opts.Path, opts.BlockSize)
		if err != nil {
			return nil, err
		}
		dev = fd
	} else {
		dev = storage.NewMemDevice()
	}
	cfg.Device = dev
	tree, err := core.New(cfg)
	if err != nil {
		return nil, errors.Join(err, dev.Close())
	}
	return &DB{opts: opts, tree: tree, raw: dev}, nil
}

func manifestPath(path string) string { return path + ".manifest" }

// reopen restores a DB from a manifest over the existing device file.
func reopen(opts Options, cfg core.Config, st manifest.State) (*DB, error) {
	want := manifest.Config{
		BlockCapacity: cfg.BlockCapacity,
		K0:            cfg.K0,
		Gamma:         cfg.Gamma,
		Epsilon:       cfg.Epsilon,
		Seed:          cfg.Seed,
	}
	if st.Config.BlockCapacity != want.BlockCapacity || st.Config.K0 != want.K0 ||
		st.Config.Gamma != want.Gamma || st.Config.Epsilon != want.Epsilon {
		return nil, fmt.Errorf("lsmssd: options (B=%d K0=%d Γ=%d ε=%g) do not match manifest (B=%d K0=%d Γ=%d ε=%g)",
			want.BlockCapacity, want.K0, want.Gamma, want.Epsilon,
			st.Config.BlockCapacity, st.Config.K0, st.Config.Gamma, st.Config.Epsilon)
	}
	var live []storage.BlockID
	for _, metas := range st.Levels {
		for _, m := range metas {
			live = append(live, m.ID)
		}
	}
	fd, err := storage.ReopenFileDevice(opts.Path, opts.BlockSize, live)
	if err != nil {
		return nil, err
	}
	cfg.Device = fd
	tree, err := core.Restore(cfg, core.ExportedState{Levels: st.Levels, Memtable: st.Memtable})
	if err != nil {
		return nil, errors.Join(err, fd.Close())
	}
	if opts.Paranoid {
		if err := invariant.CheckTree(tree); err != nil {
			return nil, errors.Join(fmt.Errorf("lsmssd: restored state: %w", err), fd.Close())
		}
	}
	return &DB{opts: opts, tree: tree, raw: fd}, nil
}

// Checkpoint atomically persists the store's metadata (level indexes and
// memtable contents) to the manifest, so a subsequent Open restores the
// current state. Only meaningful for file-backed stores; a no-op without
// Path.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if db.opts.Path == "" {
		return nil
	}
	st := db.tree.Export()
	cfg := db.tree.Config()
	return manifest.Save(manifestPath(db.opts.Path), manifest.State{
		Config: manifest.Config{
			BlockCapacity: cfg.BlockCapacity,
			K0:            cfg.K0,
			Gamma:         cfg.Gamma,
			Epsilon:       cfg.Epsilon,
			Seed:          cfg.Seed,
		},
		Levels:   st.Levels,
		Memtable: st.Memtable,
	})
}

// Put inserts or updates the value stored for key.
func (db *DB) Put(key uint64, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tree.Put(block.Key(key), value); err != nil {
		return err
	}
	return db.paranoidSteadyCheck()
}

// Delete removes key. Deleting an absent key is a no-op that still costs a
// logged tombstone, as in any LSM store.
func (db *DB) Delete(key uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.tree.Delete(block.Key(key)); err != nil {
		return err
	}
	return db.paranoidSteadyCheck()
}

// paranoidSteadyCheck asserts the strict (post-cascade) bounds after a
// mutating request when Paranoid is set. Metadata only: the per-merge
// auditor already verified block contents.
func (db *DB) paranoidSteadyCheck() error {
	if !db.opts.Paranoid {
		return nil
	}
	return invariant.Check(db.tree, invariant.Options{SkipContents: true})
}

// Get returns the value stored for key.
func (db *DB) Get(key uint64) (value []byte, found bool, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Get(block.Key(key))
}

// Scan calls fn for each key in [lo, hi] in ascending order until fn
// returns false.
func (db *DB) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Scan(block.Key(lo), block.Key(hi), func(k block.Key, v []byte) bool {
		return fn(uint64(k), v)
	})
}

// Close checkpoints a file-backed store and releases the DB's resources.
// The DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return errors.Join(db.checkpointLocked(), db.raw.Close())
}

// Validate checks every internal invariant (level ordering, waste
// constraints, storage accounting). It is cheap enough for periodic health
// checks and does not perturb the I/O statistics.
func (db *DB) Validate() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Validate()
}

// ForceGrow adds a storage level ahead of the bottom level's natural
// overflow. The paper notes that a relatively empty bottom level makes
// merges into it unusually cheap and leaves strategic level growth as an
// open direction; this exposes the experiment. Most applications should
// let the tree grow on its own.
func (db *DB) ForceGrow() {
	tree, unlock := db.lockedTree()
	defer unlock()
	tree.ForceGrow()
}

// Histogram returns the normalized key-frequency histogram of storage
// level (1-based) over buckets equal subdivisions of [0, keySpace) — the
// paper's Figure 1 diagnostic.
func (db *DB) Histogram(level int, keySpace uint64, buckets int) ([]float64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	counts, err := histogram.Level(db.tree, level, keySpace, buckets)
	if err != nil {
		return nil, err
	}
	return histogram.Normalize(counts), nil
}

// tree exposes the engine to sibling files (stats, tuning).
func (db *DB) lockedTree() (*core.Tree, func()) {
	db.mu.Lock()
	return db.tree, db.mu.Unlock
}
