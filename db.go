package lsmssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lsmssd/internal/block"
	"lsmssd/internal/compaction"
	"lsmssd/internal/core"
	"lsmssd/internal/histogram"
	"lsmssd/internal/invariant"
	"lsmssd/internal/manifest"
	"lsmssd/internal/obs"
	"lsmssd/internal/storage"
	"lsmssd/internal/wal"
)

// ErrClosed is returned by every DB operation issued after Close.
var ErrClosed = errors.New("lsmssd: database is closed")

// ErrCorrupt is returned when a data block read back from the device
// fails its integrity checksum — a torn write, bit rot, or external
// damage. The engine surfaces it through Get, Scan, iterators, and merge
// paths rather than treating the block as absent, so corruption is always
// loud. Test with errors.Is.
var ErrCorrupt = storage.ErrCorrupt

// DB is a key-value store backed by the paper's LSM-tree. All methods are
// safe for concurrent use.
//
// Concurrency model: mutations (Put, Delete, Apply, Checkpoint, TuneMixed)
// are serialized by an internal writer lock, while reads (Get, Scan,
// NewIterator, Stats, Histogram, Validate) run lock-free against an
// immutable snapshot of the tree published after every mutation and every
// merge. Readers therefore never wait for a merge cascade, and an
// in-progress Scan or Iterator observes a frozen, consistent state no
// matter how many merges complete meanwhile.
//
// Merge scheduling: mutations land records in L0 and hand overflow work
// to the compaction scheduler (internal/compaction) — inline in the
// mutating call under SyncCompaction (the default), or on a background
// goroutine under BackgroundCompaction, with write-stall backpressure
// when compaction falls behind. No merge is ever initiated from this
// layer directly.
type DB struct {
	writerMu sync.Mutex // serializes mutations, checkpoints, tuning
	closed   atomic.Bool
	opts     Options
	tree     *core.Tree
	sched    *compaction.Scheduler
	raw      storage.Device // the unwrapped device, for Close

	// Write-ahead log state (nil/zero unless Options.WAL.Enabled). lastSeq
	// is the sequence of the newest logged frame, guarded by writerMu; the
	// checkpoint manifest records it as the replay cutoff. recovery
	// captures what Open's replay did, for Stats.
	wal      *wal.Log
	lastSeq  uint64
	recovery WALRecoveryStats

	// Observability (see metrics.go). bus and lat always exist; lat records
	// only when MetricsAddr enabled it, and the bus constructs no events
	// until a sink subscribes. metrics is the HTTP endpoint, nil unless
	// Options.MetricsAddr is set.
	bus     *obs.Bus
	lat     *obs.LatencySet
	metrics *obs.Server
}

// Open creates or reopens a DB with the given options. An empty Options
// value yields an in-memory engine with the paper's defaults; invalid
// parameter combinations are rejected with an error naming the offending
// field (see Options.Validate).
//
// With Path set, Open looks for a manifest (Path + ".manifest") written by
// a previous Close or Checkpoint and, if present, restores the store from
// it; otherwise the file is created fresh. With Options.WAL enabled, Open
// then replays the write-ahead log over the restored state: every frame
// beyond the manifest's recorded sequence is re-applied, a torn tail left
// by a power cut is truncated at the first bad frame, and the recovered
// state is checkpointed before Open returns (Stats reports what the
// replay did). With the WAL disabled the manifest alone provides clean-
// shutdown persistence — a crash loses the requests since the last
// checkpoint — and Open refuses to run if it finds unreplayed WAL frames
// from an earlier WAL-enabled incarnation, rather than silently dropping
// acknowledged writes.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bus := obs.NewBus(0)
	lat := &obs.LatencySet{}
	lat.Enable(opts.MetricsAddr != "")
	cfg := core.Config{
		Policy:          opts.buildPolicy(),
		BlockCapacity:   opts.RecordsPerBlock,
		K0:              opts.MemtableBlocks,
		Gamma:           opts.Gamma,
		Epsilon:         opts.Epsilon,
		CacheBlocks:     opts.CacheBlocks,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Seed:            opts.Seed,
		Bus:             bus,
		Lat:             lat,
	}
	if opts.Paranoid {
		// Mid-cascade audits tolerate in-flight records: a merge may land
		// in a level whose own overflow the cascade has not reached yet.
		// Under background compaction the audit runs on the scheduler
		// goroutine between concurrently admitted writes, so L0's bound is
		// the stall gate's StopTrigger rather than K0.
		audit := invariant.Options{MidCascade: true}
		if opts.CompactionMode == BackgroundCompaction {
			audit.L0CapacityBlocks = opts.StopTrigger
		}
		cfg.Auditor = func(t *core.Tree) error {
			return invariant.Check(t, audit)
		}
	}

	if opts.Path != "" {
		st, err := manifest.Load(manifestPath(opts.Path))
		switch {
		case err == nil:
			db, err := reopen(opts, cfg, st)
			if err != nil {
				return nil, err
			}
			return db.finishOpen()
		case errors.Is(err, manifest.ErrNoManifest):
			// fresh store below
		default:
			return nil, err
		}
	}

	var dev storage.Device
	if opts.Path != "" {
		fd, err := storage.OpenFileDevice(opts.Path, opts.BlockSize)
		if err != nil {
			return nil, err
		}
		if opts.WAL.Enabled {
			fd.SetDeferRecycle(true)
		}
		dev = fd
	} else {
		dev = storage.NewMemDevice()
	}
	cfg.Device = dev
	tree, err := core.New(cfg)
	if err != nil {
		return nil, errors.Join(err, dev.Close())
	}
	db := &DB{opts: opts, tree: tree, raw: dev, bus: cfg.Bus, lat: cfg.Lat}
	return db.finishOpen()
}

// finishOpen wires the pieces that need the assembled DB: the compaction
// scheduler (whose per-step lock is the DB's writer lock), write-ahead
// log recovery, and the observability endpoint. WAL replay must run after
// the scheduler exists — replayed frames go through the normal admission
// and cascade path — and before the metrics endpoint serves state.
func (db *DB) finishOpen() (*DB, error) {
	mode := compaction.Sync
	if db.opts.CompactionMode == BackgroundCompaction {
		mode = compaction.Background
	}
	sched, err := compaction.New(compaction.Config{
		Tree:           db.tree,
		Mu:             &db.writerMu,
		Mode:           mode,
		SlowdownBlocks: db.opts.SlowdownTrigger,
		StopBlocks:     db.opts.StopTrigger,
		Bus:            db.bus,
		Lat:            db.lat,
	})
	if err != nil {
		return nil, errors.Join(err, db.raw.Close())
	}
	db.sched = sched
	if err := db.openWAL(); err != nil {
		db.sched.Stop()
		db.bus.Close()
		return nil, errors.Join(err, db.raw.Close())
	}
	return db.startObs()
}

func manifestPath(path string) string { return path + ".manifest" }
func walBase(path string) string      { return path + ".wal" }

// openWAL performs crash recovery and positions the log for appending.
// With the WAL disabled it only verifies that no unreplayed frames exist
// on disk — Open must never silently orphan acknowledged writes.
func (db *DB) openWAL() error {
	if db.opts.Path == "" {
		return nil
	}
	base := walBase(db.opts.Path)
	if !db.opts.WAL.Enabled {
		has, err := wal.HasFramesAfter(base, db.lastSeq)
		if err != nil {
			return fmt.Errorf("lsmssd: inspecting write-ahead log: %w", err)
		}
		if has {
			return fmt.Errorf("lsmssd: %s holds write-ahead log frames beyond the last checkpoint, but Options.WAL is disabled; reopen with the WAL enabled to recover them (or delete the segment files to discard them)", base)
		}
		return nil
	}

	start := time.Now()
	info, err := wal.Replay(base, db.lastSeq, func(seq uint64, ops []wal.Op) error {
		return db.applyReplayed(ops)
	})
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log replay: %w", err)
	}
	if info.LastSeq > db.lastSeq {
		db.lastSeq = info.LastSeq
	}
	log, err := wal.Open(base, db.lastSeq+1, wal.Options{
		Policy:       wal.SyncPolicy(db.opts.WAL.Sync),
		Interval:     db.opts.WAL.Interval,
		SegmentBytes: db.opts.WAL.SegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log open: %w", err)
	}
	db.wal = log
	db.recovery = WALRecoveryStats{
		Recovered: info.Frames > 0 || info.TornBytes > 0,
		Segments:  info.Segments,
		Frames:    info.Frames,
		Ops:       info.Ops,
		TornBytes: info.TornBytes,
	}
	if info.Frames > 0 {
		// Fold the replayed state into a fresh checkpoint immediately:
		// recovery converges instead of replaying an ever-longer log, and
		// the covered segments are garbage-collected.
		db.writerMu.Lock()
		err := db.checkpointLocked()
		db.writerMu.Unlock()
		if err != nil {
			return errors.Join(fmt.Errorf("lsmssd: post-recovery checkpoint: %w", err), db.wal.Close())
		}
	}
	if db.bus.Enabled() {
		db.bus.Publish(obs.RecoveryEvent{
			Segments:  info.Segments,
			Frames:    info.Frames,
			Ops:       info.Ops,
			TornBytes: info.TornBytes,
			Duration:  time.Since(start),
		})
	}
	return nil
}

// applyReplayed pushes one recovered WAL frame through the normal write
// path — admission, the writer lock, a batched apply, and the cascade
// notification — so recovery exercises exactly the machinery of live
// traffic.
func (db *DB) applyReplayed(ops []wal.Op) error {
	batch := make([]core.BatchOp, len(ops))
	for i, op := range ops {
		batch[i] = core.BatchOp{Key: block.Key(op.Key), Payload: op.Value, Delete: op.Delete}
	}
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if err := db.tree.ApplyBatch(batch); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	return db.paranoidSteadyCheck()
}

// reopen restores a DB from a manifest over the existing device file.
func reopen(opts Options, cfg core.Config, st manifest.State) (*DB, error) {
	want := manifest.Config{
		BlockCapacity: cfg.BlockCapacity,
		K0:            cfg.K0,
		Gamma:         cfg.Gamma,
		Epsilon:       cfg.Epsilon,
		Seed:          cfg.Seed,
	}
	if st.Config.BlockCapacity != want.BlockCapacity || st.Config.K0 != want.K0 ||
		st.Config.Gamma != want.Gamma || st.Config.Epsilon != want.Epsilon {
		return nil, fmt.Errorf("lsmssd: options (B=%d K0=%d Γ=%d ε=%g) do not match manifest (B=%d K0=%d Γ=%d ε=%g)",
			want.BlockCapacity, want.K0, want.Gamma, want.Epsilon,
			st.Config.BlockCapacity, st.Config.K0, st.Config.Gamma, st.Config.Epsilon)
	}
	var live []storage.BlockID
	for _, metas := range st.Levels {
		for _, m := range metas {
			live = append(live, m.ID)
		}
	}
	fd, err := storage.ReopenFileDevice(opts.Path, opts.BlockSize, live)
	if err != nil {
		return nil, err
	}
	if opts.WAL.Enabled {
		fd.SetDeferRecycle(true)
	}
	cfg.Device = fd
	tree, err := core.Restore(cfg, core.ExportedState{Levels: st.Levels, Memtable: st.Memtable})
	if err != nil {
		return nil, errors.Join(err, fd.Close())
	}
	if opts.Paranoid {
		if err := invariant.CheckTree(tree); err != nil {
			return nil, errors.Join(fmt.Errorf("lsmssd: restored state: %w", err), fd.Close())
		}
	}
	return &DB{opts: opts, tree: tree, raw: fd, bus: cfg.Bus, lat: cfg.Lat, lastSeq: st.WALSeq}, nil
}

// acquireView pins the current read snapshot, translating a closed engine
// into the public sentinel. Callers must Release the returned view.
func (db *DB) acquireView() (*core.View, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	v, err := db.tree.AcquireView()
	if err != nil {
		return nil, ErrClosed
	}
	return v, nil
}

// Checkpoint atomically persists the store's metadata (level indexes and
// memtable contents) to the manifest, so a subsequent Open restores the
// current state. Only meaningful for file-backed stores; a no-op without
// Path.
func (db *DB) Checkpoint() error {
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	return db.checkpointLocked()
}

// checkpointLocked persists the current state under the writer lock. With
// the WAL enabled it also advances the durability horizon, in a fixed
// order: the device is synced first (the manifest must never reference a
// block the device could still lose), the manifest then records lastSeq
// as the replay cutoff, and only after that checkpoint is durable do
// freed block slots become reusable and fully covered WAL segments get
// deleted.
func (db *DB) checkpointLocked() error {
	if db.opts.Path == "" {
		return nil
	}
	if db.wal != nil {
		if s, ok := db.raw.(storage.Syncer); ok {
			if err := s.Sync(); err != nil {
				return fmt.Errorf("lsmssd: syncing device before checkpoint: %w", err)
			}
		}
	}
	st := db.tree.Export()
	cfg := db.tree.Config()
	if err := manifest.Save(manifestPath(db.opts.Path), manifest.State{
		Config: manifest.Config{
			BlockCapacity: cfg.BlockCapacity,
			K0:            cfg.K0,
			Gamma:         cfg.Gamma,
			Epsilon:       cfg.Epsilon,
			Seed:          cfg.Seed,
		},
		WALSeq:   db.lastSeq,
		Levels:   st.Levels,
		Memtable: st.Memtable,
	}); err != nil {
		return err
	}
	if db.wal == nil {
		return nil
	}
	if fd, ok := db.raw.(*storage.FileDevice); ok {
		fd.ReclaimFreed()
	}
	removed, err := db.wal.GC(db.lastSeq)
	if err != nil {
		return fmt.Errorf("lsmssd: write-ahead log gc: %w", err)
	}
	if removed > 0 && db.bus.Enabled() {
		s := db.wal.Stats()
		db.bus.Publish(obs.WALEvent{Kind: "gc", Segments: s.Segments, Removed: removed, LastSeq: db.lastSeq})
	}
	return nil
}

// logMutation appends ops to the write-ahead log as a single frame —
// group commit: one frame, and under SyncEvery one fsync, per request
// regardless of batch size. A logging failure means the request was never
// made durable, so the caller must fail it without touching the tree.
// When the append sealed a segment the caller checkpoints after applying
// the ops (after, because the checkpoint's WALSeq covers this frame — the
// manifest state must include it). Caller holds writerMu.
func (db *DB) logMutation(ops []wal.Op) (rotated bool, err error) {
	if db.wal == nil {
		return false, nil
	}
	start := db.lat.Start()
	seq, rotated, err := db.wal.Append(ops)
	db.lat.Done(obs.OpWALAppend, start)
	if err != nil {
		// rotated can be true even on error: the rotation succeeded before
		// the frame write failed. Checkpoint now anyway, so the sealed
		// segment is covered and GC'd instead of lingering until the next
		// rotation.
		if rotated {
			if cerr := db.checkpointLocked(); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
		return false, fmt.Errorf("lsmssd: write-ahead log append: %w", err)
	}
	db.lastSeq = seq
	if rotated && db.bus.Enabled() {
		s := db.wal.Stats()
		db.bus.Publish(obs.WALEvent{Kind: "rotate", Segments: s.Segments, LastSeq: seq})
	}
	return rotated, nil
}

// Put inserts or updates the value stored for key. Under background
// compaction Put may pace or stall when L0 reaches the configured
// triggers, and reports any merge error the scheduler parked since the
// previous write.
func (db *DB) Put(key uint64, value []byte) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpPut, start)
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	rotated, err := db.logMutation([]wal.Op{{Key: key, Value: value}})
	if err != nil {
		return err
	}
	if err := db.tree.Put(block.Key(key), value); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	if rotated {
		if err := db.checkpointLocked(); err != nil {
			return err
		}
	}
	return db.paranoidSteadyCheck()
}

// Delete removes key. Deleting an absent key is a no-op that still costs a
// logged tombstone, as in any LSM store.
func (db *DB) Delete(key uint64) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpDelete, start)
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	rotated, err := db.logMutation([]wal.Op{{Key: key, Delete: true}})
	if err != nil {
		return err
	}
	if err := db.tree.Delete(block.Key(key)); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	if rotated {
		if err := db.checkpointLocked(); err != nil {
			return err
		}
	}
	return db.paranoidSteadyCheck()
}

// paranoidSteadyCheck asserts the strict (post-cascade) bounds after a
// mutating request when Paranoid is set. Metadata only: the per-merge
// auditor already verified block contents. The strictness is keyed off
// the scheduler's state, not the call position: with the background
// cascade still draining, the relaxed mid-cascade bounds apply.
func (db *DB) paranoidSteadyCheck() error {
	if !db.opts.Paranoid {
		return nil
	}
	o := invariant.Options{SkipContents: true}
	if db.sched.Pending() {
		o.MidCascade = true
		o.L0CapacityBlocks = db.opts.StopTrigger
	}
	return invariant.Check(db.tree, o)
}

// Get returns the value stored for key. It runs against the current
// snapshot without taking the writer lock, so concurrent Gets scale across
// cores even while merges run.
func (db *DB) Get(key uint64) (value []byte, found bool, err error) {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpGet, start)
	v, err := db.acquireView()
	if err != nil {
		return nil, false, err
	}
	defer v.Release()
	return v.Get(block.Key(key))
}

// Scan calls fn for each key in [lo, hi] in ascending order until fn
// returns false. The whole scan observes one snapshot: a merge or write
// that completes mid-scan does not change what the scan sees. Scan is a
// thin wrapper over the Iterator API.
func (db *DB) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpScan, start)
	v, err := db.acquireView()
	if err != nil {
		return err
	}
	defer v.Release()
	return v.Scan(block.Key(lo), block.Key(hi), func(k block.Key, val []byte) bool {
		return fn(uint64(k), val)
	})
}

// Close checkpoints a file-backed store and releases the DB's resources,
// including the metrics endpoint and the event bus (pending events are
// delivered to subscribed sinks before Close returns). Every operation
// issued after Close returns ErrClosed.
//
// Ordering: the compaction scheduler is stopped first, before the writer
// lock is taken — its goroutine needs the lock to finish an in-flight
// merge step, and it must be quiescent before the device and event bus go
// away. A cascade interrupted mid-way is completed on the next Open (the
// manifest round-trips over-capacity levels; Restore drains them). Any
// background merge error the scheduler parked is folded into Close's
// return.
func (db *DB) Close() error {
	db.sched.Stop()
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var merr error
	if db.metrics != nil {
		merr = db.metrics.Close()
		db.metrics = nil
	}
	db.bus.Close()
	err := db.checkpointLocked()
	var werr error
	if db.wal != nil {
		werr = db.wal.Close()
		db.wal = nil
	}
	db.closed.Store(true)
	db.tree.MarkClosed()
	return errors.Join(db.sched.Err(), merr, err, werr, db.raw.Close())
}

// Crash abandons the DB as a power cut would: no checkpoint, no device
// sync, and write-ahead log frames buffered past the last policy-driven
// fsync are truncated, exactly as an OS page cache would lose them. A
// subsequent Open performs crash recovery from the last checkpoint plus
// the surviving WAL prefix. Crash exists for durability testing (the
// crash-loop harness drives it); production code wants Close. The
// returned error reports teardown problems only.
func (db *DB) Crash() error {
	db.sched.Stop()
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var merr error
	if db.metrics != nil {
		merr = db.metrics.Close()
		db.metrics = nil
	}
	db.bus.Close()
	var werr error
	if db.wal != nil {
		werr = db.wal.Crash()
		db.wal = nil
	}
	db.closed.Store(true)
	db.tree.MarkClosed()
	return errors.Join(merr, werr, db.raw.Close())
}

// Validate checks every internal invariant (level ordering, waste
// constraints, storage accounting). The structural checks run lock-free
// against the current snapshot; only the device-accounting cross-check
// briefly takes the writer lock. It does not perturb the I/O statistics.
func (db *DB) Validate() error {
	v, err := db.acquireView()
	if err != nil {
		return err
	}
	defer v.Release()
	if err := v.Validate(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	return db.tree.ValidateAccounting()
}

// ForceGrow adds a storage level ahead of the bottom level's natural
// overflow. The paper notes that a relatively empty bottom level makes
// merges into it unusually cheap and leaves strategic level growth as an
// open direction; this exposes the experiment. Most applications should
// let the tree grow on its own.
func (db *DB) ForceGrow() {
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return
	}
	db.tree.ForceGrow()
}

// Histogram returns the normalized key-frequency histogram of storage
// level (1-based) over buckets equal subdivisions of [0, keySpace) — the
// paper's Figure 1 diagnostic. It reads from the current snapshot without
// blocking writers.
func (db *DB) Histogram(level int, keySpace uint64, buckets int) ([]float64, error) {
	v, err := db.acquireView()
	if err != nil {
		return nil, err
	}
	defer v.Release()
	counts, err := histogram.ViewLevel(v, level, keySpace, buckets)
	if err != nil {
		return nil, err
	}
	return histogram.Normalize(counts), nil
}

// lockedTree exposes the engine under the writer lock to sibling files
// (stats reset, tuning — operations that drive or reset the live tree).
func (db *DB) lockedTree() (*core.Tree, func()) {
	db.writerMu.Lock()
	return db.tree, db.writerMu.Unlock
}
