package lsmssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lsmssd/internal/block"
	"lsmssd/internal/compaction"
	"lsmssd/internal/core"
	"lsmssd/internal/histogram"
	"lsmssd/internal/invariant"
	"lsmssd/internal/manifest"
	"lsmssd/internal/obs"
	"lsmssd/internal/storage"
)

// ErrClosed is returned by every DB operation issued after Close.
var ErrClosed = errors.New("lsmssd: database is closed")

// DB is a key-value store backed by the paper's LSM-tree. All methods are
// safe for concurrent use.
//
// Concurrency model: mutations (Put, Delete, Apply, Checkpoint, TuneMixed)
// are serialized by an internal writer lock, while reads (Get, Scan,
// NewIterator, Stats, Histogram, Validate) run lock-free against an
// immutable snapshot of the tree published after every mutation and every
// merge. Readers therefore never wait for a merge cascade, and an
// in-progress Scan or Iterator observes a frozen, consistent state no
// matter how many merges complete meanwhile.
//
// Merge scheduling: mutations land records in L0 and hand overflow work
// to the compaction scheduler (internal/compaction) — inline in the
// mutating call under SyncCompaction (the default), or on a background
// goroutine under BackgroundCompaction, with write-stall backpressure
// when compaction falls behind. No merge is ever initiated from this
// layer directly.
type DB struct {
	writerMu sync.Mutex // serializes mutations, checkpoints, tuning
	closed   atomic.Bool
	opts     Options
	tree     *core.Tree
	sched    *compaction.Scheduler
	raw      storage.Device // the unwrapped device, for Close

	// Observability (see metrics.go). bus and lat always exist; lat records
	// only when MetricsAddr enabled it, and the bus constructs no events
	// until a sink subscribes. metrics is the HTTP endpoint, nil unless
	// Options.MetricsAddr is set.
	bus     *obs.Bus
	lat     *obs.LatencySet
	metrics *obs.Server
}

// Open creates or reopens a DB with the given options. An empty Options
// value yields an in-memory engine with the paper's defaults; invalid
// parameter combinations are rejected with an error naming the offending
// field (see Options.Validate).
//
// With Path set, Open looks for a manifest (Path + ".manifest") written by
// a previous Close or Checkpoint and, if present, restores the store from
// it; otherwise the file is created fresh. The manifest provides clean-
// shutdown persistence, not crash durability — requests since the last
// checkpoint are lost on a crash (there is no write-ahead log; see the
// package documentation).
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bus := obs.NewBus(0)
	lat := &obs.LatencySet{}
	lat.Enable(opts.MetricsAddr != "")
	cfg := core.Config{
		Policy:          opts.buildPolicy(),
		BlockCapacity:   opts.RecordsPerBlock,
		K0:              opts.MemtableBlocks,
		Gamma:           opts.Gamma,
		Epsilon:         opts.Epsilon,
		CacheBlocks:     opts.CacheBlocks,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Seed:            opts.Seed,
		Bus:             bus,
		Lat:             lat,
	}
	if opts.Paranoid {
		// Mid-cascade audits tolerate in-flight records: a merge may land
		// in a level whose own overflow the cascade has not reached yet.
		// Under background compaction the audit runs on the scheduler
		// goroutine between concurrently admitted writes, so L0's bound is
		// the stall gate's StopTrigger rather than K0.
		audit := invariant.Options{MidCascade: true}
		if opts.CompactionMode == BackgroundCompaction {
			audit.L0CapacityBlocks = opts.StopTrigger
		}
		cfg.Auditor = func(t *core.Tree) error {
			return invariant.Check(t, audit)
		}
	}

	if opts.Path != "" {
		st, err := manifest.Load(manifestPath(opts.Path))
		switch {
		case err == nil:
			db, err := reopen(opts, cfg, st)
			if err != nil {
				return nil, err
			}
			return db.finishOpen()
		case errors.Is(err, manifest.ErrNoManifest):
			// fresh store below
		default:
			return nil, err
		}
	}

	var dev storage.Device
	if opts.Path != "" {
		fd, err := storage.OpenFileDevice(opts.Path, opts.BlockSize)
		if err != nil {
			return nil, err
		}
		dev = fd
	} else {
		dev = storage.NewMemDevice()
	}
	cfg.Device = dev
	tree, err := core.New(cfg)
	if err != nil {
		return nil, errors.Join(err, dev.Close())
	}
	db := &DB{opts: opts, tree: tree, raw: dev, bus: cfg.Bus, lat: cfg.Lat}
	return db.finishOpen()
}

// finishOpen wires the pieces that need the assembled DB: the compaction
// scheduler (whose per-step lock is the DB's writer lock) and the
// observability endpoint.
func (db *DB) finishOpen() (*DB, error) {
	mode := compaction.Sync
	if db.opts.CompactionMode == BackgroundCompaction {
		mode = compaction.Background
	}
	sched, err := compaction.New(compaction.Config{
		Tree:           db.tree,
		Mu:             &db.writerMu,
		Mode:           mode,
		SlowdownBlocks: db.opts.SlowdownTrigger,
		StopBlocks:     db.opts.StopTrigger,
		Bus:            db.bus,
		Lat:            db.lat,
	})
	if err != nil {
		return nil, errors.Join(err, db.raw.Close())
	}
	db.sched = sched
	return db.startObs()
}

func manifestPath(path string) string { return path + ".manifest" }

// reopen restores a DB from a manifest over the existing device file.
func reopen(opts Options, cfg core.Config, st manifest.State) (*DB, error) {
	want := manifest.Config{
		BlockCapacity: cfg.BlockCapacity,
		K0:            cfg.K0,
		Gamma:         cfg.Gamma,
		Epsilon:       cfg.Epsilon,
		Seed:          cfg.Seed,
	}
	if st.Config.BlockCapacity != want.BlockCapacity || st.Config.K0 != want.K0 ||
		st.Config.Gamma != want.Gamma || st.Config.Epsilon != want.Epsilon {
		return nil, fmt.Errorf("lsmssd: options (B=%d K0=%d Γ=%d ε=%g) do not match manifest (B=%d K0=%d Γ=%d ε=%g)",
			want.BlockCapacity, want.K0, want.Gamma, want.Epsilon,
			st.Config.BlockCapacity, st.Config.K0, st.Config.Gamma, st.Config.Epsilon)
	}
	var live []storage.BlockID
	for _, metas := range st.Levels {
		for _, m := range metas {
			live = append(live, m.ID)
		}
	}
	fd, err := storage.ReopenFileDevice(opts.Path, opts.BlockSize, live)
	if err != nil {
		return nil, err
	}
	cfg.Device = fd
	tree, err := core.Restore(cfg, core.ExportedState{Levels: st.Levels, Memtable: st.Memtable})
	if err != nil {
		return nil, errors.Join(err, fd.Close())
	}
	if opts.Paranoid {
		if err := invariant.CheckTree(tree); err != nil {
			return nil, errors.Join(fmt.Errorf("lsmssd: restored state: %w", err), fd.Close())
		}
	}
	return &DB{opts: opts, tree: tree, raw: fd, bus: cfg.Bus, lat: cfg.Lat}, nil
}

// acquireView pins the current read snapshot, translating a closed engine
// into the public sentinel. Callers must Release the returned view.
func (db *DB) acquireView() (*core.View, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	v, err := db.tree.AcquireView()
	if err != nil {
		return nil, ErrClosed
	}
	return v, nil
}

// Checkpoint atomically persists the store's metadata (level indexes and
// memtable contents) to the manifest, so a subsequent Open restores the
// current state. Only meaningful for file-backed stores; a no-op without
// Path.
func (db *DB) Checkpoint() error {
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if db.opts.Path == "" {
		return nil
	}
	st := db.tree.Export()
	cfg := db.tree.Config()
	return manifest.Save(manifestPath(db.opts.Path), manifest.State{
		Config: manifest.Config{
			BlockCapacity: cfg.BlockCapacity,
			K0:            cfg.K0,
			Gamma:         cfg.Gamma,
			Epsilon:       cfg.Epsilon,
			Seed:          cfg.Seed,
		},
		Levels:   st.Levels,
		Memtable: st.Memtable,
	})
}

// Put inserts or updates the value stored for key. Under background
// compaction Put may pace or stall when L0 reaches the configured
// triggers, and reports any merge error the scheduler parked since the
// previous write.
func (db *DB) Put(key uint64, value []byte) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpPut, start)
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.tree.Put(block.Key(key), value); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	return db.paranoidSteadyCheck()
}

// Delete removes key. Deleting an absent key is a no-op that still costs a
// logged tombstone, as in any LSM store.
func (db *DB) Delete(key uint64) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpDelete, start)
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.tree.Delete(block.Key(key)); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	return db.paranoidSteadyCheck()
}

// paranoidSteadyCheck asserts the strict (post-cascade) bounds after a
// mutating request when Paranoid is set. Metadata only: the per-merge
// auditor already verified block contents. The strictness is keyed off
// the scheduler's state, not the call position: with the background
// cascade still draining, the relaxed mid-cascade bounds apply.
func (db *DB) paranoidSteadyCheck() error {
	if !db.opts.Paranoid {
		return nil
	}
	o := invariant.Options{SkipContents: true}
	if db.sched.Pending() {
		o.MidCascade = true
		o.L0CapacityBlocks = db.opts.StopTrigger
	}
	return invariant.Check(db.tree, o)
}

// Get returns the value stored for key. It runs against the current
// snapshot without taking the writer lock, so concurrent Gets scale across
// cores even while merges run.
func (db *DB) Get(key uint64) (value []byte, found bool, err error) {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpGet, start)
	v, err := db.acquireView()
	if err != nil {
		return nil, false, err
	}
	defer v.Release()
	return v.Get(block.Key(key))
}

// Scan calls fn for each key in [lo, hi] in ascending order until fn
// returns false. The whole scan observes one snapshot: a merge or write
// that completes mid-scan does not change what the scan sees. Scan is a
// thin wrapper over the Iterator API.
func (db *DB) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	start := db.lat.Start()
	defer db.lat.Done(obs.OpScan, start)
	v, err := db.acquireView()
	if err != nil {
		return err
	}
	defer v.Release()
	return v.Scan(block.Key(lo), block.Key(hi), func(k block.Key, val []byte) bool {
		return fn(uint64(k), val)
	})
}

// Close checkpoints a file-backed store and releases the DB's resources,
// including the metrics endpoint and the event bus (pending events are
// delivered to subscribed sinks before Close returns). Every operation
// issued after Close returns ErrClosed.
//
// Ordering: the compaction scheduler is stopped first, before the writer
// lock is taken — its goroutine needs the lock to finish an in-flight
// merge step, and it must be quiescent before the device and event bus go
// away. A cascade interrupted mid-way is completed on the next Open (the
// manifest round-trips over-capacity levels; Restore drains them). Any
// background merge error the scheduler parked is folded into Close's
// return.
func (db *DB) Close() error {
	db.sched.Stop()
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var merr error
	if db.metrics != nil {
		merr = db.metrics.Close()
		db.metrics = nil
	}
	db.bus.Close()
	err := db.checkpointLocked()
	db.closed.Store(true)
	db.tree.MarkClosed()
	return errors.Join(db.sched.Err(), merr, err, db.raw.Close())
}

// Validate checks every internal invariant (level ordering, waste
// constraints, storage accounting). The structural checks run lock-free
// against the current snapshot; only the device-accounting cross-check
// briefly takes the writer lock. It does not perturb the I/O statistics.
func (db *DB) Validate() error {
	v, err := db.acquireView()
	if err != nil {
		return err
	}
	defer v.Release()
	if err := v.Validate(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	return db.tree.ValidateAccounting()
}

// ForceGrow adds a storage level ahead of the bottom level's natural
// overflow. The paper notes that a relatively empty bottom level makes
// merges into it unusually cheap and leaves strategic level growth as an
// open direction; this exposes the experiment. Most applications should
// let the tree grow on its own.
func (db *DB) ForceGrow() {
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return
	}
	db.tree.ForceGrow()
}

// Histogram returns the normalized key-frequency histogram of storage
// level (1-based) over buckets equal subdivisions of [0, keySpace) — the
// paper's Figure 1 diagnostic. It reads from the current snapshot without
// blocking writers.
func (db *DB) Histogram(level int, keySpace uint64, buckets int) ([]float64, error) {
	v, err := db.acquireView()
	if err != nil {
		return nil, err
	}
	defer v.Release()
	counts, err := histogram.ViewLevel(v, level, keySpace, buckets)
	if err != nil {
		return nil, err
	}
	return histogram.Normalize(counts), nil
}

// lockedTree exposes the engine under the writer lock to sibling files
// (stats reset, tuning — operations that drive or reset the live tree).
func (db *DB) lockedTree() (*core.Tree, func()) {
	db.writerMu.Lock()
	return db.tree, db.writerMu.Unlock
}
