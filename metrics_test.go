package lsmssd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// obsOptions mirrors the external tests' smallOptions: tiny levels so a
// few thousand requests exercise many merges.
func obsOptions() Options {
	return Options{
		RecordsPerBlock: 8,
		MemtableBlocks:  2,
		Gamma:           4,
		Delta:           0.25,
		CacheBlocks:     -1,
	}
}

// TestTraceSumsToDeviceWrites is the tentpole accounting property: with a
// sink subscribed from before the first write, summing TotalWrites over
// every MergeEvent reproduces the device's BlocksWritten counter exactly —
// the event taxonomy misses no write path (merged output, both sides'
// repairs, compactions).
func TestTraceSumsToDeviceWrites(t *testing.T) {
	db, err := Open(obsOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var (
		total   int64
		merges  int64
		flushes int
		grows   int
	)
	cancel := db.Subscribe(func(ev Event) {
		switch e := ev.(type) {
		case MergeEvent:
			total += int64(e.TotalWrites())
			merges++
			if e.XBlocks != e.XTo-e.XFrom {
				t.Errorf("merge L%d→L%d: XBlocks=%d but window is [%d,%d)", e.From, e.To, e.XBlocks, e.XFrom, e.XTo)
			}
			if e.Policy == "" {
				t.Error("merge event carries no policy name")
			}
			if (e.Cases.Has(2) || e.Cases.Has(4)) != e.Compaction {
				t.Errorf("Compaction=%v inconsistent with Cases=%s", e.Compaction, e.Cases)
			}
		case FlushEvent:
			flushes++
		case GrowEvent:
			grows++
		}
	})
	defer cancel()

	for i := 0; i < 3000; i++ {
		k := uint64(i*2654435761) % 100_000
		if i%7 == 3 {
			if err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	s := db.Stats()
	db.bus.Flush()
	if d := db.EventDrops(); d != 0 {
		t.Fatalf("bus dropped %d events; accounting check impossible", d)
	}
	if s.BlocksWritten == 0 || merges == 0 {
		t.Fatalf("workload produced no merges (writes=%d merges=%d)", s.BlocksWritten, merges)
	}
	if total != s.BlocksWritten {
		t.Errorf("sum of MergeEvent.TotalWrites = %d, device BlocksWritten = %d", total, s.BlocksWritten)
	}
	if merges != s.Merges {
		t.Errorf("observed %d merge events, Stats.Merges = %d", merges, s.Merges)
	}
	if flushes == 0 {
		t.Error("no flush events observed")
	}
	if grows == 0 || s.Height < 3 {
		t.Errorf("no growth observed (grows=%d height=%d)", grows, s.Height)
	}
}

// TestMetricsEndpoint opens a DB with an ephemeral observability endpoint
// and checks the three surfaces: Prometheus text on /metrics, the JSON
// state dump on /debug/lsm, and Stats.Latencies being populated.
func TestMetricsEndpoint(t *testing.T) {
	opts := obsOptions()
	opts.MetricsAddr = "127.0.0.1:0"
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	addr := db.MetricsAddr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("MetricsAddr() = %q, want a resolved host:port", addr)
	}

	for i := uint64(0); i < 500; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.Get(7); err != nil {
		t.Fatal(err)
	}
	if err := db.Scan(0, 50, func(uint64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	for _, family := range []string{
		"lsmssd_blocks_written_total",
		"lsmssd_merges_total",
		"lsmssd_level_waste_factor{level=\"1\"}",
		"lsmssd_op_duration_seconds_bucket{op=\"put\",le=",
		"lsmssd_op_duration_seconds_count{op=\"get\"}",
		"lsmssd_event_drops_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/lsm")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Policy    string `json:"policy"`
		Height    int    `json:"height"`
		Levels    []any  `json:"levels"`
		Latencies []any  `json:"latencies"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/lsm: %v", err)
	}
	if dump.Policy == "" || dump.Height < 2 || len(dump.Levels) == 0 {
		t.Errorf("/debug/lsm dump incomplete: %+v", dump)
	}
	if len(dump.Latencies) == 0 {
		t.Error("/debug/lsm has no latency summaries despite MetricsAddr being set")
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}

	// Stats.Latencies reports the same recording.
	s := db.Stats()
	byOp := map[string]LatencyStats{}
	for _, l := range s.Latencies {
		byOp[l.Op] = l
	}
	if byOp["put"].Count != 500 {
		t.Errorf("put latency count = %d, want 500", byOp["put"].Count)
	}
	if byOp["get"].Count != 1 || byOp["scan"].Count != 1 {
		t.Errorf("get/scan latency counts = %d/%d, want 1/1", byOp["get"].Count, byOp["scan"].Count)
	}
	if byOp["put"].Mean <= 0 || byOp["put"].P99 < byOp["put"].P50 {
		t.Errorf("put latency summary implausible: %+v", byOp["put"])
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}

// TestLatenciesOffByDefault: without MetricsAddr no timestamps are taken
// and Stats.Latencies stays empty.
func TestLatenciesOffByDefault(t *testing.T) {
	db, err := Open(obsOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.Stats(); len(s.Latencies) != 0 {
		t.Errorf("Latencies = %+v without MetricsAddr", s.Latencies)
	}
}

// TestResetIOStatsUniformWindow pins the documented reset semantics:
// every cumulative counter in Stats zeroes together, structural fields
// survive untouched.
func TestResetIOStatsUniformWindow(t *testing.T) {
	opts := obsOptions()
	opts.MetricsAddr = "127.0.0.1:0"
	opts.CacheBlocks = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := uint64(0); i < 2000; i++ {
		if err := db.Put(i%500, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.Get(3); err != nil {
		t.Fatal(err)
	}

	s1 := db.Stats()
	if s1.BlocksWritten == 0 || s1.Merges == 0 || s1.Inserts != 2000 || len(s1.Latencies) == 0 {
		t.Fatalf("warm-up did not populate counters: %+v", s1)
	}

	db.ResetIOStats()
	s2 := db.Stats()

	zeros := map[string]int64{
		"BlocksWritten": s2.BlocksWritten, "BlocksRead": s2.BlocksRead,
		"Requests": s2.Requests, "Inserts": s2.Inserts, "Deletes": s2.Deletes,
		"Lookups": s2.Lookups, "Scans": s2.Scans, "RequestBytes": s2.RequestBytes,
		"Merges": s2.Merges, "FullMerges": s2.FullMerges,
		"CacheHits": s2.CacheHits, "CacheMisses": s2.CacheMisses,
		"BloomSkipped": s2.BloomSkipped, "BloomPassed": s2.BloomPassed,
	}
	for name, v := range zeros {
		if v != 0 {
			t.Errorf("after ResetIOStats, %s = %d, want 0", name, v)
		}
	}
	for _, l := range s2.Levels {
		if l.BlocksWritten != 0 || l.Compactions != 0 {
			t.Errorf("L%d traffic not reset: written=%d compactions=%d", l.Level, l.BlocksWritten, l.Compactions)
		}
	}
	if len(s2.Latencies) != 0 {
		t.Errorf("latency histograms not reset: %+v", s2.Latencies)
	}

	// Structural state describes the present and must be unaffected.
	if s2.Height != s1.Height || s2.Records != s1.Records ||
		s2.MemtableRecords != s1.MemtableRecords || s2.LiveBlocks != s1.LiveBlocks {
		t.Errorf("structure changed by reset:\nbefore %+v\nafter  %+v", s1, s2)
	}
	if len(s2.Levels) != len(s1.Levels) {
		t.Fatalf("level count changed by reset: %d → %d", len(s1.Levels), len(s2.Levels))
	}
	for i := range s2.Levels {
		if s2.Levels[i].Blocks != s1.Levels[i].Blocks || s2.Levels[i].Records != s1.Levels[i].Records {
			t.Errorf("L%d contents changed by reset", s2.Levels[i].Level)
		}
	}

	// The next window accumulates from zero.
	if err := db.Put(999_999, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s3 := db.Stats(); s3.Inserts != 1 {
		t.Errorf("post-reset Inserts = %d, want 1", s3.Inserts)
	}
}
