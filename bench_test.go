// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations over the design choices called out in DESIGN.md.
//
// Each benchmark executes a scaled-down instance of the corresponding
// experiment per iteration and reports the experiment's own metric
// (blocks written per paper-MB of requests) via ReportMetric, so
// `go test -bench=.` prints the figure's headline numbers next to the
// usual ns/op. cmd/lsmbench runs the same experiments at larger scale and
// prints the full tables; EXPERIMENTS.md records paper-vs-measured.
package lsmssd_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"lsmssd"
	"lsmssd/internal/experiments"
)

// benchParams is the common scale for benchmark runs: small enough for
// go test -bench to finish in minutes, large enough for δK windows to
// have paper-like granularity.
func benchParams() experiments.Params {
	return experiments.Params{Scale: 0.02, Seed: 1}.WithDefaults()
}

// reportSteady runs one steady-state experiment per iteration and reports
// writes/MB.
func reportSteady(b *testing.B, spec experiments.SteadySpec) {
	b.Helper()
	p := benchParams()
	var last experiments.SteadyResult
	for i := 0; i < b.N; i++ {
		res, err := p.RunSteady(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.WritesPerMB, "writes/MB")
	b.ReportMetric(float64(last.Height), "levels")
}

func BenchmarkFig1KeyDistribution(b *testing.B) {
	p := benchParams()
	var skew float64
	for i := 0; i < b.N; i++ {
		res, _, err := p.Fig1(100)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: max/mean bucket frequency of L1 — the skew RR
		// induces (L2 stays at ~1).
		max := 0.0
		for _, f := range res.L1 {
			if f > max {
				max = f
			}
		}
		skew = max * float64(len(res.L1))
	}
	b.ReportMetric(skew, "L1peak/mean")
}

func BenchmarkFig2(b *testing.B) {
	for _, kind := range []experiments.WorkloadKind{experiments.Uniform, experiments.Normal} {
		wl := kind
		for _, pol := range []string{"Full", "ChooseBest", "TestMixed"} {
			b.Run(fmt.Sprintf("%s/%s/60MB", wl, pol), func(b *testing.B) {
				p := benchParams()
				spec := experiments.SteadySpec{
					PolicyName: pol, Delta: 1.0 / 20,
					DatasetMB: 60, K0MB: 1, CacheMB: 1,
				}
				spec.Workload = workloadFor(p, wl)
				reportSteady(b, spec)
			})
		}
	}
}

func BenchmarkFig3CumulativeByLevel(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		series, _, err := p.Fig3([]string{"Full", "ChooseBest"}, 30, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFig4CumulativeTestMixed(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Fig3([]string{"Full", "ChooseBest", "TestMixed"}, 30, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5TauCurve(b *testing.B) {
	p := benchParams()
	var curve0, curveMin float64
	for i := 0; i < b.N; i++ {
		t, err := p.Fig5(experiments.Uniform)
		if err != nil {
			b.Fatal(err)
		}
		curve0, curveMin = curveStats(t)
	}
	b.ReportMetric(curve0, "C(0)")
	b.ReportMetric(curveMin, "C(min)")
}

func curveStats(t *experiments.Table) (c0, cmin float64) {
	cmin = 1e18
	for i, row := range t.Rows {
		var c float64
		fmt.Sscanf(row[1], "%f", &c)
		if i == 0 {
			c0 = c
		}
		if c < cmin {
			cmin = c
		}
	}
	return c0, cmin
}

func BenchmarkFig6(b *testing.B) {
	for _, kind := range []experiments.WorkloadKind{experiments.Uniform, experiments.Normal, experiments.TPC} {
		wl := kind
		policies := []string{"Full-P", "Full", "RR", "ChooseBest", "Mixed"}
		for _, pol := range policies {
			b.Run(fmt.Sprintf("%s/%s/500MB", wl, pol), func(b *testing.B) {
				p := benchParams()
				spec := experiments.SteadySpec{
					PolicyName: pol, Delta: 0.05,
					DatasetMB: 500, K0MB: 16, CacheMB: 100,
				}
				spec.Workload = workloadFor(p, wl)
				reportSteady(b, spec)
			})
		}
	}
}

func BenchmarkFig7ProcessingTime(b *testing.B) {
	p := benchParams()
	var secs float64
	for i := 0; i < b.N; i++ {
		res, err := p.RunSteady(experiments.SteadySpec{
			PolicyName: "ChooseBest", Delta: 0.05,
			Workload:  workloadFor(p, experiments.Normal),
			DatasetMB: 500, K0MB: 16, CacheMB: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		secs = res.SecondsPerMB
	}
	b.ReportMetric(secs, "s/MB")
}

func BenchmarkFig8Skew(b *testing.B) {
	for _, pct := range []float64{0.005, 1, 20} {
		twoSigma := pct
		b.Run(fmt.Sprintf("2sigma=%g%%/ChooseBest", twoSigma), func(b *testing.B) {
			p := benchParams()
			wl := workloadFor(p, experiments.Normal)
			wl.Sigma = twoSigma / 100 / 2
			reportSteady(b, experiments.SteadySpec{
				PolicyName: "ChooseBest", Delta: 0.07,
				Workload:  wl,
				DatasetMB: 300, K0MB: 16, CacheMB: 16,
			})
		})
	}
}

func BenchmarkFig9PayloadSize(b *testing.B) {
	for _, payload := range []int{25, 1000, 4000} {
		pl := payload
		for _, pol := range []string{"ChooseBest-P", "ChooseBest"} {
			b.Run(fmt.Sprintf("payload=%d/%s", pl, pol), func(b *testing.B) {
				p := benchParams()
				wl := workloadFor(p, experiments.Uniform)
				wl.PayloadSize = pl
				reportSteady(b, experiments.SteadySpec{
					PolicyName: pol, Delta: 0.07,
					Workload:  wl,
					DatasetMB: 300, K0MB: 16, CacheMB: 16,
				})
			})
		}
	}
}

func BenchmarkFig10InsertOnly(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fig10([]float64{300, 600}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationPreserve isolates the block-preserving merge: identical
// runs with and without it at a payload size where preservation matters.
func BenchmarkAblationPreserve(b *testing.B) {
	for _, pol := range []string{"RR-P", "RR"} {
		b.Run(pol, func(b *testing.B) {
			p := benchParams()
			wl := workloadFor(p, experiments.Uniform)
			wl.PayloadSize = 1000
			reportSteady(b, experiments.SteadySpec{
				PolicyName: pol, Delta: 0.07,
				Workload:  wl,
				DatasetMB: 300, K0MB: 16, CacheMB: 16,
			})
		})
	}
}

// BenchmarkAblationDelta sweeps the merge rate δ for ChooseBest.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{0.02, 0.07, 0.2, 0.5} {
		d := delta
		b.Run(fmt.Sprintf("delta=%g", d), func(b *testing.B) {
			p := benchParams()
			reportSteady(b, experiments.SteadySpec{
				PolicyName: "ChooseBest", Delta: d,
				Workload:  workloadFor(p, experiments.Uniform),
				DatasetMB: 300, K0MB: 16, CacheMB: 16,
			})
		})
	}
}

// BenchmarkAblationPartitioned compares full ChooseBest with the
// HyperLevelDB-style pre-partitioned restriction.
func BenchmarkAblationPartitioned(b *testing.B) {
	for _, pol := range []string{"ChooseBestPart", "ChooseBest"} {
		b.Run(pol, func(b *testing.B) {
			p := benchParams()
			reportSteady(b, experiments.SteadySpec{
				PolicyName: pol, Delta: 0.07,
				Workload:  workloadFor(p, experiments.Uniform),
				DatasetMB: 300, K0MB: 16, CacheMB: 16,
			})
		})
	}
}

// BenchmarkAblationEpsilon sweeps the waste bound ε.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.05, 0.2, 0.4} {
		e := eps
		b.Run(fmt.Sprintf("epsilon=%g", e), func(b *testing.B) {
			p := benchParams()
			p.Epsilon = e
			reportSteady(b, experiments.SteadySpec{
				PolicyName: "ChooseBest", Delta: 0.07,
				Workload:  workloadFor(p, experiments.Uniform),
				DatasetMB: 300, K0MB: 16, CacheMB: 16,
			})
		})
	}
}

// BenchmarkAblationBloom measures lookup read savings from per-block
// Bloom filters under a miss-heavy lookup mix.
func BenchmarkAblationBloom(b *testing.B) {
	for _, bits := range []float64{0, 10} {
		bb := bits
		b.Run(fmt.Sprintf("bits=%g", bb), func(b *testing.B) {
			db, err := lsmssd.Open(lsmssd.Options{
				MemtableBlocks:  64,
				BloomBitsPerKey: bb,
				CacheBlocks:     -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for k := uint64(0); k < 100_000; k += 2 {
				if err := db.Put(k, []byte("v")); err != nil {
					b.Fatal(err)
				}
			}
			db.ResetIOStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, _ := db.Get(uint64(i%100_000)*2 + 1); ok {
					b.Fatal("odd key present")
				}
			}
			b.ReportMetric(float64(db.Stats().BlocksRead)/float64(b.N), "reads/miss")
		})
	}
}

// --- Microbenchmarks on the public API -----------------------------------

func BenchmarkPut(b *testing.B) {
	db, err := lsmssd.Open(lsmssd.Options{CacheBlocks: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(uint64(i)*2654435761%1_000_000_000, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(db.Stats().BlocksWritten)/float64(b.N), "writes/op")
}

func BenchmarkGet(b *testing.B) {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 200_000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := db.Get(uint64(i) % n); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkConcurrentReads measures point-lookup throughput scaling across
// goroutines (run with `make bench-read`). Gets acquire a snapshot instead
// of the writer lock, so throughput should rise substantially from 1 to 8
// goroutines; a background writer keeps merges churning to show reads do
// not stall behind them.
func BenchmarkConcurrentReads(b *testing.B) {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 200_000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", readers), func(b *testing.B) {
			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() { // background writer: steady merge pressure
				defer writerWG.Done()
				payload := make([]byte, 100)
				for i := uint64(n); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := db.Put(i%(2*n), payload); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					k := uint64(g)*7919 + 1
					ops := b.N / readers
					if g < b.N%readers {
						ops++
					}
					for i := 0; i < ops; i++ {
						k = k*2654435761 + 1
						if _, _, err := db.Get(k % n); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			writerWG.Wait()
		})
	}
}

func BenchmarkScan(b *testing.B) {
	db, err := lsmssd.Open(lsmssd.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		if err := db.Put(i, []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) % (n - 1000)
		count := 0
		db.Scan(lo, lo+999, func(uint64, []byte) bool {
			count++
			return true
		})
		if count == 0 {
			b.Fatal("empty scan")
		}
	}
}

func workloadFor(p experiments.Params, kind experiments.WorkloadKind) experiments.WorkloadSpec {
	switch kind {
	case experiments.Normal:
		return experiments.WorkloadSpec{Kind: experiments.Normal, Sigma: 0.005, Omega: 200, PayloadSize: 100, InsertRatio: 0.5}
	case experiments.TPC:
		return experiments.WorkloadSpec{Kind: experiments.TPC, PayloadSize: 100, InsertRatio: 0.5}
	default:
		return experiments.WorkloadSpec{Kind: experiments.Uniform, PayloadSize: 100, InsertRatio: 0.5}
	}
}

// BenchmarkQueryOverhead reproduces the technical report's query
// experiment: lookup and scan read costs per policy at steady state.
func BenchmarkQueryOverhead(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.QueryOverhead([]string{"Full-P", "ChooseBest"}, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionForcedGrowth explores the paper's open question of
// strategic level growth: with the bottom level nearly full (the most
// expensive regime in Figure 6), does adding the next level early reduce
// steady-state writes the way natural growth does at the 1700MB crossover?
func BenchmarkExtensionForcedGrowth(b *testing.B) {
	for _, forced := range []bool{false, true} {
		name := "natural"
		if forced {
			name = "forced"
		}
		b.Run(name, func(b *testing.B) {
			p := benchParams()
			var writesPerMB float64
			for i := 0; i < b.N; i++ {
				res, err := p.RunSteadyForced(experiments.SteadySpec{
					PolicyName: "ChooseBest", Delta: 0.05,
					Workload:  workloadFor(p, experiments.Uniform),
					DatasetMB: 1500, K0MB: 16, CacheMB: 100, // bottom ~90% full
				}, forced)
				if err != nil {
					b.Fatal(err)
				}
				writesPerMB = res.WritesPerMB
			}
			b.ReportMetric(writesPerMB, "writes/MB")
		})
	}
}

// BenchmarkConcurrentWrites measures write throughput with concurrent
// writers under both compaction modes (run with `make bench-write`). Sync
// mode makes the overflowing writer pay the whole cascade inline;
// background mode moves it to the scheduler goroutine, so writers pay only
// L0 insertion plus any backpressure.
func BenchmarkConcurrentWrites(b *testing.B) {
	for _, mode := range []lsmssd.CompactionMode{lsmssd.SyncCompaction, lsmssd.BackgroundCompaction} {
		mode := mode
		for _, writers := range []int{1, 4} {
			writers := writers
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode, writers), func(b *testing.B) {
				db, err := lsmssd.Open(lsmssd.Options{CompactionMode: mode, CacheBlocks: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				payload := make([]byte, 100)
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < writers; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						ops := b.N / writers
						if g < b.N%writers {
							ops++
						}
						k := uint64(g) * 1_000_003
						for i := 0; i < ops; i++ {
							k = k*2654435761 + 1
							if err := db.Put(k%100_000_000, payload); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				c := db.Stats().Compaction
				b.ReportMetric(float64(c.Slowdowns+c.Stops)/float64(b.N), "stalls/op")
			})
		}
	}
}

// BenchmarkPutLatencyTail compares the put-latency tail across compaction
// modes: sync's tail is the full cascade a boundary write pays; background
// trades it for scheduler backpressure. Reports p50/p99/max per mode.
func BenchmarkPutLatencyTail(b *testing.B) {
	for _, mode := range []lsmssd.CompactionMode{lsmssd.SyncCompaction, lsmssd.BackgroundCompaction} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			db, err := lsmssd.Open(lsmssd.Options{CompactionMode: mode, CacheBlocks: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			payload := make([]byte, 100)
			lat := make([]time.Duration, b.N)
			k := uint64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k = k*2654435761 + 1
				start := time.Now()
				if err := db.Put(k%100_000_000, payload); err != nil {
					b.Fatal(err)
				}
				lat[i] = time.Since(start)
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
			b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds()), "max-ns")
		})
	}
}
