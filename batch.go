package lsmssd

import (
	"errors"

	"lsmssd/internal/block"
	"lsmssd/internal/core"
	"lsmssd/internal/obs"
)

// ErrBatchDB is returned by Apply when a batch created by one DB's
// NewBatch is applied to a different DB. A batch partitions its
// operations by the creating DB's shard layout at append time, so
// applying it elsewhere would route keys to the wrong trees.
var ErrBatchDB = errors.New("lsmssd: batch was created by a different DB")

// WriteBatch collects Put and Delete operations to be applied in one call.
// Batching amortizes the per-request overhead — one writer-lock
// acquisition, one merge-cascade check, and one snapshot publication per
// touched shard for the whole batch instead of one per record — and gives
// readers per-shard atomicity: no snapshot observes a prefix of a shard's
// slice of an applied batch. With Shards = 1 (the default) the whole
// batch is atomic; with more shards, each shard's portion commits as a
// unit but a concurrent reader may observe one shard's portion before
// another's.
//
// A WriteBatch is not safe for concurrent use. It may be reused after
// Apply via Reset.
type WriteBatch struct {
	// db is the DB this batch was created by; Apply rejects any other.
	// A zero-value &WriteBatch{} has no binding and partitions at Apply.
	db *DB

	// perShard holds the queued operations pre-partitioned by owning
	// shard, each slice in append order. Unbound batches use a single
	// slice. n is the total across slices.
	perShard [][]core.BatchOp
	n        int
}

// NewBatch returns an empty write batch for use with this DB's Apply.
// The batch is bound to db: its operations are partitioned by db's shard
// layout as they are appended, and applying it to a different DB fails
// with ErrBatchDB.
func (db *DB) NewBatch() *WriteBatch {
	return &WriteBatch{db: db, perShard: make([][]core.BatchOp, len(db.shards))}
}

// bucket returns the partition that should receive key's operation.
func (b *WriteBatch) bucket(key uint64) *[]core.BatchOp {
	if b.db == nil {
		// Unbound (zero-value) batch: single staging slice, partitioned by
		// the receiving DB at Apply.
		if b.perShard == nil {
			b.perShard = make([][]core.BatchOp, 1)
		}
		return &b.perShard[0]
	}
	return &b.perShard[key&b.db.mask]
}

// Put queues an insert or update of the value stored for key. The value
// slice is retained until Apply; the caller must not modify it before
// then.
func (b *WriteBatch) Put(key uint64, value []byte) {
	ops := b.bucket(key)
	*ops = append(*ops, core.BatchOp{Key: block.Key(key), Payload: value})
	b.n++
}

// Delete queues a removal of key.
func (b *WriteBatch) Delete(key uint64) {
	ops := b.bucket(key)
	*ops = append(*ops, core.BatchOp{Key: block.Key(key), Delete: true})
	b.n++
}

// Len returns the number of queued operations.
func (b *WriteBatch) Len() int { return b.n }

// Reset empties the batch for reuse, retaining its capacity and DB
// binding.
func (b *WriteBatch) Reset() {
	for i := range b.perShard {
		b.perShard[i] = b.perShard[i][:0]
	}
	b.n = 0
}

// Apply executes the batch's operations as a single atomic writer step
// per touched shard, shards in ascending order. Within a shard the
// operations run in append order, so later operations on the same key
// win, exactly as if issued sequentially; request statistics count each
// operation individually. The batch itself is not consumed — Reset it to
// reuse, or Apply it again to re-run the same operations. Like Put,
// Apply is subject to write-stall backpressure under background
// compaction (one admission per touched shard).
//
// With the WAL enabled each touched shard's slice is logged as one frame
// on that shard's log — group commit: under SyncEvery a thousand-record
// batch costs one fsync per touched shard, not a thousand — and replay
// re-applies each frame atomically.
func (db *DB) Apply(b *WriteBatch) error {
	if b.db != nil && b.db != db {
		return ErrBatchDB
	}
	if b.db == nil && b.n > 0 && len(db.shards) > 1 {
		// Unbound batch against a sharded DB: partition its staging slice
		// now, exactly as NewBatch would have at append time.
		staged := b.perShard[0]
		b.db = db
		b.perShard = make([][]core.BatchOp, len(db.shards))
		b.n = 0
		for _, op := range staged {
			ops := b.bucket(uint64(op.Key))
			*ops = append(*ops, op)
			b.n++
		}
	}
	if b.n == 0 {
		// An empty batch still goes through one shard's admission and
		// cascade check, preserving the pre-sharding semantics (a stalled
		// or failed engine reports it).
		return db.applyShard(db.shards[0], nil)
	}
	for i, ops := range b.perShard {
		if len(ops) == 0 {
			continue
		}
		s := db.shards[0]
		if b.db != nil {
			s = db.shards[i]
		}
		if err := db.applyShard(s, ops); err != nil {
			return err
		}
	}
	return nil
}

// applyShard runs one shard's slice of a batch under its own latency
// series and phase span: each touched shard is a separate atomic writer
// step, so each gets its own OpApply observation — a stall on shard 2
// shows up on shard 2's timeline, not smeared across the batch.
func (db *DB) applyShard(s *shard, ops []core.BatchOp) error {
	start := s.lat.Start()
	sp := db.tracer.Start(obs.OpApply, s.id)
	err := s.applyOps(ops, sp)
	sp.Finish()
	s.lat.Done(obs.OpApply, start)
	return err
}
