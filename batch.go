package lsmssd

import (
	"lsmssd/internal/block"
	"lsmssd/internal/core"
	"lsmssd/internal/wal"
)

// WriteBatch collects Put and Delete operations to be applied in one call.
// Batching amortizes the per-request overhead — one writer-lock
// acquisition, one merge-cascade check, and one snapshot publication for
// the whole batch instead of one per record — and gives readers atomicity:
// no snapshot observes a prefix of an applied batch.
//
// A WriteBatch is not safe for concurrent use. It may be reused after
// Apply via Reset.
type WriteBatch struct {
	ops []core.BatchOp
}

// NewBatch returns an empty write batch for use with Apply.
func (db *DB) NewBatch() *WriteBatch { return &WriteBatch{} }

// Put queues an insert or update of the value stored for key. The value
// slice is retained until Apply; the caller must not modify it before
// then.
func (b *WriteBatch) Put(key uint64, value []byte) {
	b.ops = append(b.ops, core.BatchOp{Key: block.Key(key), Payload: value})
}

// Delete queues a removal of key.
func (b *WriteBatch) Delete(key uint64) {
	b.ops = append(b.ops, core.BatchOp{Key: block.Key(key), Delete: true})
}

// Len returns the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse, retaining its capacity.
func (b *WriteBatch) Reset() { b.ops = b.ops[:0] }

// Apply executes the batch's operations in order as a single atomic writer
// step. Later operations on the same key win, exactly as if issued
// sequentially; request statistics count each operation individually. The
// batch itself is not consumed — Reset it to reuse, or Apply it again to
// re-run the same operations. Like Put, Apply is subject to write-stall
// backpressure under background compaction (one admission for the whole
// batch).
//
// With the WAL enabled the whole batch is logged as one frame — group
// commit: under SyncEvery a thousand-record batch costs one fsync, not a
// thousand — and replay re-applies it atomically.
func (db *DB) Apply(b *WriteBatch) error {
	if err := db.sched.Admit(); err != nil {
		return err
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	var rotated bool
	if db.wal != nil && len(b.ops) > 0 {
		ops := make([]wal.Op, len(b.ops))
		for i, op := range b.ops {
			ops[i] = wal.Op{Key: uint64(op.Key), Value: op.Payload, Delete: op.Delete}
		}
		var err error
		rotated, err = db.logMutation(ops)
		if err != nil {
			return err
		}
	}
	if err := db.tree.ApplyBatch(b.ops); err != nil {
		return err
	}
	if err := db.sched.Notify(); err != nil {
		return err
	}
	if rotated {
		if err := db.checkpointLocked(); err != nil {
			return err
		}
	}
	return db.paranoidSteadyCheck()
}
