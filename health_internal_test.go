package lsmssd

// White-box tests for the health layer: the pure write-error classifier,
// the ShardReadOnlyError unwrap contract, and the scrub/repair/quarantine
// path driven deterministically by invoking scrubPass directly (no
// background scrubber, no timing).

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"lsmssd/internal/core"
	"lsmssd/internal/faultdev"
	"lsmssd/internal/health"
	"lsmssd/internal/storage"
	"lsmssd/internal/wal"
)

func TestClassifyWriteError(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		to    health.State
		cause string
	}{
		{"nil", nil, health.Healthy, ""},
		{"wal-poisoned", fmt.Errorf("append: %w", wal.ErrPoisoned), health.ReadOnly, "wal-poisoned"},
		{"no-space", fmt.Errorf("flush: %w", storage.ErrNoSpace), health.ReadOnly, "enospc"},
		{"injected-no-space", fmt.Errorf("flush: %w", faultdev.ErrNoSpace), health.ReadOnly, "enospc"},
		{"syscall-enospc", fmt.Errorf("write: %w", syscall.ENOSPC), health.ReadOnly, "enospc"},
		{"quarantined", fmt.Errorf("merge: %w", core.ErrQuarantined), health.ReadOnly, "quarantined-compaction"},
		{"corrupt", fmt.Errorf("read: %w", storage.ErrCorrupt), health.Degraded, "corrupt-read"},
		{"closed", ErrClosed, health.Healthy, ""},
		{"other", errors.New("a caller mistake"), health.Healthy, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			to, cause := classifyWriteError(tc.err)
			if to != tc.to || cause != tc.cause {
				t.Fatalf("classifyWriteError(%v) = (%v, %q), want (%v, %q)", tc.err, to, cause, tc.to, tc.cause)
			}
		})
	}
}

func TestShardReadOnlyErrorUnwrap(t *testing.T) {
	e := &ShardReadOnlyError{Shard: 3, State: "read-only", Cause: "enospc", Err: storage.ErrNoSpace}
	if !errors.Is(e, ErrShardReadOnly) {
		t.Fatal("errors.Is(e, ErrShardReadOnly) = false")
	}
	if !errors.Is(e, storage.ErrNoSpace) {
		t.Fatal("errors.Is(e, storage.ErrNoSpace) = false: the demoting cause must stay testable")
	}
	for _, want := range []string{"shard 3", "read-only", "enospc"} {
		if !errContains(e, want) {
			t.Fatalf("error text %q does not mention %q", e.Error(), want)
		}
	}
	bare := &ShardReadOnlyError{Shard: 0, State: "failed", Cause: "corrupt-read-while-read-only"}
	if !errors.Is(bare, ErrShardReadOnly) {
		t.Fatal("errors.Is on a cause-less ShardReadOnlyError = false")
	}
}

func errContains(err error, sub string) bool {
	s := err.Error()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// openWithFault opens a single-shard store whose device is wrapped in a
// zero-schedule faultdev, returning both so the test can corrupt blocks
// deterministically.
func openWithFault(t *testing.T, opts Options) (*DB, *faultdev.Device) {
	t.Helper()
	var fd *faultdev.Device
	opts.DeviceWrap = func(shard int, dev storage.Device) storage.Device {
		fd = faultdev.Wrap(dev, faultdev.Options{})
		return fd
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db, fd
}

// liveBlock returns one storage-level block of shard 0.
func liveBlock(t *testing.T, db *DB) (storage.BlockID, int) {
	t.Helper()
	v, err := db.shards[0].acquireView()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	for _, lv := range v.Levels() {
		for _, run := range lv.Runs {
			if len(run) > 0 {
				return run[0].ID, lv.Number
			}
		}
	}
	t.Fatal("no storage blocks; workload too small to flush")
	return 0, 0
}

func healthWorkload(t *testing.T, db *DB, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		if err := db.Put(uint64(k), []byte(fmt.Sprintf("value-%04d", k))); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
}

// TestScrubRepairsCorruption: a corrupt device block is detected by the
// scrub pass below the buffer cache, quarantined, and repaired from the
// surviving cached copy — leaving the shard healthy, the quarantine
// empty, and every key readable.
func TestScrubRepairsCorruption(t *testing.T) {
	db, fd := openWithFault(t, Options{MemtableBlocks: 2, RecordsPerBlock: 16})
	healthWorkload(t, db, 200)

	id, _ := liveBlock(t, db)
	fd.Corrupt(id)
	s := db.shards[0]
	s.scrubPass()

	if got := s.scrubCorrupt.Load(); got != 1 {
		t.Fatalf("scrubCorrupt = %d, want 1", got)
	}
	if got := s.scrubRepaired.Load(); got != 1 {
		t.Fatalf("scrubRepaired = %d, want 1 (cache held a surviving copy)", got)
	}
	if n := s.tree.QuarantinedCount(); n != 0 {
		t.Fatalf("quarantine holds %d blocks after a successful repair, want 0", n)
	}
	if st := s.health.State(); st != health.Healthy {
		t.Fatalf("shard state %v after repair, want Healthy", st)
	}
	for k := 0; k < 200; k++ {
		v, ok, err := db.Get(uint64(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("value-%04d", k) {
			t.Fatalf("Get(%d) after repair: ok=%v err=%v", k, ok, err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate after repair: %v", err)
	}
	// The repair must have left the device copy clean: a second pass finds
	// nothing.
	s.scrubPass()
	if got := s.scrubCorrupt.Load(); got != 1 {
		t.Fatalf("second scrub pass found more corruption (total %d), repair did not stick", got)
	}
}

// TestScrubQuarantinesUnrepairable: with the cache disabled there is no
// surviving copy, so the corrupt block stays quarantined, the shard
// demotes to Degraded, and the health report names the block.
func TestScrubQuarantinesUnrepairable(t *testing.T) {
	db, fd := openWithFault(t, Options{MemtableBlocks: 2, RecordsPerBlock: 16, CacheBlocks: -1})
	healthWorkload(t, db, 200)

	id, lvl := liveBlock(t, db)
	fd.Corrupt(id)
	s := db.shards[0]
	s.scrubPass()

	if n := s.tree.QuarantinedCount(); n != 1 {
		t.Fatalf("quarantine holds %d blocks, want 1 (no cache copy to repair from)", n)
	}
	if st := s.health.State(); st != health.Degraded {
		t.Fatalf("shard state %v, want Degraded", st)
	}
	hr := db.Health()
	if hr.State != "degraded" {
		t.Fatalf("Health().State = %q, want degraded", hr.State)
	}
	sh := hr.Shards[0]
	if sh.Cause != "scrub-corruption" {
		t.Fatalf("Health cause = %q, want scrub-corruption", sh.Cause)
	}
	if len(sh.Quarantined) != 1 || sh.Quarantined[0].Block != uint64(id) || sh.Quarantined[0].Level != lvl {
		t.Fatalf("Health quarantine list = %+v, want block %d at level %d", sh.Quarantined, id, lvl)
	}
	if st := db.Stats(); st.Health != "degraded" || st.Quarantined != 1 {
		t.Fatalf("Stats Health=%q Quarantined=%d, want degraded/1", st.Health, st.Quarantined)
	}
}

// TestRetryExhaustionDegrades: a device whose reads fail persistently
// exhausts the bounded retry schedule; the error surfaces to the caller
// and the shard demotes to Degraded with the retry cause.
func TestRetryExhaustionDegrades(t *testing.T) {
	db, fd := openWithFault(t, Options{MemtableBlocks: 2, RecordsPerBlock: 16, CacheBlocks: -1, ReadRetries: 2})
	healthWorkload(t, db, 200)

	fd.FailReadAt(fd.Reads() + 1) // every device read from now on fails
	if _, _, err := db.Get(0); err == nil {
		t.Fatal("Get succeeded with every device read failing")
	}
	ss := db.Stats().Shards[0]
	if ss.RetriesExhausted == 0 {
		t.Fatalf("RetriesExhausted = 0 after a failed read, want > 0 (RetriedReads=%d)", ss.RetriedReads)
	}
	if ss.Health != "degraded" || ss.HealthCause != "read-retries-exhausted" {
		t.Fatalf("shard health %q cause %q, want degraded/read-retries-exhausted", ss.Health, ss.HealthCause)
	}
}
