package lsmssd_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lsmssd"
)

// smallOpts keeps levels tiny so a few hundred records exercise merges.
func smallOpts() lsmssd.Options {
	return lsmssd.Options{
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		Paranoid:        true,
	}
}

func TestIteratorBasic(t *testing.T) {
	db, err := lsmssd.Open(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 500; k++ {
		if err := db.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k += 5 {
		if err := db.Delete(k); err != nil {
			t.Fatal(err)
		}
	}

	it, err := db.NewIterator(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	want := uint64(100)
	for it.Next() {
		for want%5 == 0 {
			want++ // deleted
		}
		if it.Key() != want {
			t.Fatalf("got key %d, want %d", it.Key(), want)
		}
		if got := string(it.Value()); got != fmt.Sprintf("v%d", want) {
			t.Fatalf("key %d: value %q", want, got)
		}
		want++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if want != 200 {
		t.Fatalf("iteration stopped at %d", want)
	}
}

// TestIteratorFrozenAcrossWrites pins an iterator's snapshot, then rewrites
// every key and drives merges; the iterator must still return the original
// contents.
func TestIteratorFrozenAcrossWrites(t *testing.T) {
	db, err := lsmssd.Open(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for k := uint64(0); k < 300; k += 2 {
		if err := db.Put(k, []byte("old")); err != nil {
			t.Fatal(err)
		}
	}

	it, err := db.NewIterator(0, 299)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Overwrite everything and add the odd keys, forcing several merges
	// past the snapshot.
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 300; k++ {
			if err := db.Put(k, []byte("new")); err != nil {
				t.Fatal(err)
			}
		}
	}

	n := 0
	for it.Next() {
		if it.Key()%2 != 0 {
			t.Fatalf("snapshot leaked key %d written after NewIterator", it.Key())
		}
		if !bytes.Equal(it.Value(), []byte("old")) {
			t.Fatalf("key %d: snapshot sees later value %q", it.Key(), it.Value())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("snapshot iterator saw %d keys, want 150", n)
	}
	// A fresh read sees the new state.
	v, ok, err := db.Get(1)
	if err != nil || !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("live Get(1) = %q, %v, %v", v, ok, err)
	}
}

func TestWriteBatchRoundTrip(t *testing.T) {
	db, err := lsmssd.Open(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	before := db.Stats()
	b := db.NewBatch()
	for k := uint64(0); k < 400; k++ {
		b.Put(k, []byte(fmt.Sprintf("b%d", k)))
	}
	b.Delete(7)
	b.Put(8, []byte("final")) // later op on same key wins
	if b.Len() != 402 {
		t.Fatalf("Len = %d, want 402", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}

	if _, ok, _ := db.Get(7); ok {
		t.Error("key 7 deleted in batch but still present")
	}
	if v, ok, _ := db.Get(8); !ok || string(v) != "final" {
		t.Errorf("key 8 = %q, %v; want later batch op to win", v, ok)
	}
	for k := uint64(9); k < 400; k += 37 {
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("b%d", k) {
			t.Fatalf("Get(%d) = %q, %v, %v", k, v, ok, err)
		}
	}

	s := db.Stats()
	if got := s.Requests - before.Requests; got != 402 {
		t.Errorf("batch counted %d requests, want 402 (one per op)", got)
	}
	if got := s.Deletes - before.Deletes; got != 1 {
		t.Errorf("batch counted %d deletes, want 1", got)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}

	// Reset empties the batch for reuse.
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestBatchMatchesSequential checks that a batched workload leaves the
// same store contents and the same write cost as the identical sequence of
// individual requests — batching changes locking, not merge behaviour.
func TestBatchMatchesSequential(t *testing.T) {
	run := func(batched bool) (int64, map[uint64]string) {
		opts := smallOpts()
		opts.Paranoid = false
		db, err := lsmssd.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		const n = 1000
		if batched {
			b := db.NewBatch()
			for k := uint64(0); k < n; k++ {
				b.Put(k*3%n, []byte(fmt.Sprintf("v%d", k)))
				if k%10 == 9 {
					if err := db.Apply(b); err != nil {
						t.Fatal(err)
					}
					b.Reset()
				}
			}
			if err := db.Apply(b); err != nil {
				t.Fatal(err)
			}
		} else {
			for k := uint64(0); k < n; k++ {
				if err := db.Put(k*3%n, []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := map[uint64]string{}
		if err := db.Scan(0, n, func(k uint64, v []byte) bool {
			got[k] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return db.Stats().BlocksWritten, got
	}

	seqW, seqM := run(false)
	batW, batM := run(true)
	if len(seqM) != len(batM) {
		t.Fatalf("batched run has %d keys, sequential %d", len(batM), len(seqM))
	}
	for k, v := range seqM {
		if batM[k] != v {
			t.Fatalf("key %d: batched %q, sequential %q", k, batM[k], v)
		}
	}
	// Batched L0 fills can cross the overflow threshold before the cascade
	// runs, so write counts may differ slightly — but not wildly.
	if batW > seqW*2 || seqW > batW*2 {
		t.Errorf("write cost diverged: batched %d vs sequential %d", batW, seqW)
	}
}

func TestErrClosed(t *testing.T) {
	db, err := lsmssd.Open(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := db.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator(0, 99) // in-flight before Close
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next() {
		t.Fatal("iterator empty before Close")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if err := db.Put(1, nil); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Put after Close: %v", err)
	}
	if err := db.Delete(1); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Delete after Close: %v", err)
	}
	if _, _, err := db.Get(1); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Get after Close: %v", err)
	}
	if err := db.Scan(0, 10, func(uint64, []byte) bool { return true }); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Scan after Close: %v", err)
	}
	if _, err := db.NewIterator(0, 10); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("NewIterator after Close: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Checkpoint after Close: %v", err)
	}
	if err := db.Apply(db.NewBatch()); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Apply after Close: %v", err)
	}
	if err := db.Validate(); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("Validate after Close: %v", err)
	}
	if err := db.Close(); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("second Close: %v", err)
	}
	// The in-flight iterator fails deterministically rather than crashing.
	if it.Next() {
		t.Error("iterator advanced past Close")
	}
	if err := it.Err(); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("iterator Err after Close: %v", err)
	}
	if err := it.Close(); !errors.Is(err, lsmssd.ErrClosed) {
		t.Errorf("iterator Close after DB Close: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*lsmssd.Options)
		field string
	}{
		{"epsilon negative", func(o *lsmssd.Options) { o.Epsilon = -0.1 }, "Epsilon"},
		{"epsilon one", func(o *lsmssd.Options) { o.Epsilon = 1 }, "Epsilon"},
		{"epsilon above one", func(o *lsmssd.Options) { o.Epsilon = 1.5 }, "Epsilon"},
		{"delta negative", func(o *lsmssd.Options) { o.Delta = -0.2 }, "Delta"},
		{"delta above one", func(o *lsmssd.Options) { o.Delta = 1.01 }, "Delta"},
		{"gamma one", func(o *lsmssd.Options) { o.Gamma = 1 }, "Gamma"},
		{"gamma negative", func(o *lsmssd.Options) { o.Gamma = -3 }, "Gamma"},
		{"blocksize negative", func(o *lsmssd.Options) { o.BlockSize = -4096 }, "BlockSize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var o lsmssd.Options
			tc.mut(&o)
			err := o.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid options")
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %s", err, tc.field)
			}
			if _, err := lsmssd.Open(o); err == nil {
				t.Error("Open accepted invalid options")
			}
		})
	}
	// Zero value means defaults and is valid.
	if err := (lsmssd.Options{}).Validate(); err != nil {
		t.Errorf("zero Options invalid: %v", err)
	}
}
