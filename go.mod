module lsmssd

go 1.22
