package lsmssd_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lsmssd"
)

// TestRaceStress hammers one file-backed DB from concurrent writers,
// readers, scanners, and checkpointers. The DB serializes internally, so
// the test's job is to give the race detector (go test -race ./...)
// enough interleavings to catch any path that escapes the lock — stats
// snapshots, checkpoint I/O, tuning views, cache and bloom bookkeeping.
func TestRaceStress(t *testing.T) {
	raceStress(t, lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "race.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 8,
	})
}

// TestRaceStressTiering and TestRaceStressLazy repeat the stress under
// the multi-run layouts: the read path walks several runs per level and
// whole-run merges retire blocks in bulk, so snapshot lifetimes and the
// deferred-free protocol see different interleavings than leveling.
func TestRaceStressTiering(t *testing.T) {
	raceStress(t, lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "race.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 8,
		Layout:          lsmssd.Tiering,
		TierRuns:        3,
	})
}

func TestRaceStressLazy(t *testing.T) {
	raceStress(t, lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "race.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 8,
		Layout:          lsmssd.LazyLeveling,
		TierRuns:        3,
	})
}

func raceStress(t *testing.T, opts lsmssd.Options) {
	db, err := lsmssd.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	}()

	const keySpace = 2000
	ops := 3000
	if testing.Short() {
		ops = 400
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	// Writers: mixed Put/Delete traffic driving real merges.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keySpace))
				if rng.Intn(5) == 0 {
					if err := db.Delete(k); err != nil {
						fail("writer %d: Delete(%d): %v", w, k, err)
						return
					}
				} else if err := db.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					fail("writer %d: Put(%d): %v", w, k, err)
					return
				}
			}
		}()
	}

	// Readers: point lookups across the key space.
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < ops; i++ {
				if _, _, err := db.Get(uint64(rng.Intn(keySpace))); err != nil {
					fail("reader %d: Get: %v", r, err)
					return
				}
			}
		}()
	}

	// Scanner: range reads crossing level boundaries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		for i := 0; i < ops/10; i++ {
			lo := uint64(rng.Intn(keySpace))
			n := 0
			err := db.Scan(lo, lo+50, func(uint64, []byte) bool {
				n++
				return n < 200
			})
			if err != nil {
				fail("scanner: Scan: %v", err)
				return
			}
		}
	}()

	// Checkpointer: persists metadata while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ops/100; i++ {
			if err := db.Checkpoint(); err != nil {
				fail("checkpointer: %v", err)
				return
			}
		}
	}()

	// Auditor: stats snapshots and full validation interleaved.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ops/100; i++ {
			_ = db.Stats()
			if err := db.Validate(); err != nil {
				fail("auditor: Validate: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceIteratorSnapshot verifies snapshot isolation under churn: every
// iterator must observe exactly the keys below the fence that existed when
// it was created, while writers drive merges with keys above the fence.
// Any metadata or block reuse leaking across a snapshot boundary shows up
// here as a missing, extra, or reordered key — and the interleavings give
// the race detector the read-path/merge overlap to chew on.
func TestRaceIteratorSnapshot(t *testing.T) {
	db, err := lsmssd.Open(lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "iter.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Fixed region: even keys in [0, fence), written once, never touched
	// again. Iterators over this region must always see exactly these.
	const fence = uint64(2000)
	for k := uint64(0); k < fence; k += 2 {
		if err := db.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	ops := 4000
	if testing.Short() {
		ops = 600
	}

	// Writers churn above the fence, forcing merges that rewrite the
	// levels holding the fixed region's blocks alongside the new data.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < ops; i++ {
				k := fence + uint64(rng.Intn(4000))
				if rng.Intn(6) == 0 {
					if err := db.Delete(k); err != nil {
						fail("writer %d: Delete(%d): %v", w, k, err)
						return
					}
				} else if err := db.Put(k, []byte("churn")); err != nil {
					fail("writer %d: Put(%d): %v", w, k, err)
					return
				}
			}
		}()
	}

	// Iterator goroutines: repeatedly walk the fixed region on a fresh
	// snapshot and demand the exact expected sequence.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				it, err := db.NewIterator(0, fence-1)
				if err != nil {
					fail("iter %d: NewIterator: %v", g, err)
					return
				}
				want := uint64(0)
				for it.Next() {
					if it.Key() != want {
						fail("iter %d round %d: got key %d, want %d", g, round, it.Key(), want)
						it.Close()
						return
					}
					if len(it.Value()) != 1 || it.Value()[0] != byte(want) {
						fail("iter %d round %d: key %d has wrong value %v", g, round, want, it.Value())
						it.Close()
						return
					}
					want += 2
				}
				if err := it.Close(); err != nil {
					fail("iter %d round %d: Close: %v", g, round, err)
					return
				}
				if want != fence {
					fail("iter %d round %d: stopped at %d, want %d keys", g, round, want/2, fence/2)
					return
				}
			}
		}()
	}

	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceBackgroundCompaction hammers a background-compaction DB with
// concurrent writers, readers, and iterators while Close fires mid-flight.
// The scheduler goroutine takes the writer lock per step, so every
// interleaving of admission gate, cascade step, snapshot read, and
// shutdown is in play here for the race detector; workers treat ErrClosed
// as the clean end of the run.
func TestRaceBackgroundCompaction(t *testing.T) {
	db, err := lsmssd.Open(lsmssd.Options{
		Path:            filepath.Join(t.TempDir(), "bg.blk"),
		RecordsPerBlock: 16,
		MemtableBlocks:  4,
		Gamma:           4,
		Delta:           0.2,
		CacheBlocks:     64,
		BloomBitsPerKey: 8,
		CompactionMode:  lsmssd.BackgroundCompaction,
		SlowdownTrigger: 6,
		StopTrigger:     10,
	})
	if err != nil {
		t.Fatal(err)
	}

	const keySpace = 2000
	ops := 3000
	if testing.Short() {
		ops = 400
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	closed := func(err error) bool { return errors.Is(err, lsmssd.ErrClosed) }

	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keySpace))
				if rng.Intn(5) == 0 {
					if err := db.Delete(k); err != nil {
						if !closed(err) {
							fail("writer %d: Delete(%d): %v", w, k, err)
						}
						return
					}
				} else if err := db.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					if !closed(err) {
						fail("writer %d: Put(%d): %v", w, k, err)
					}
					return
				}
			}
		}()
	}

	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(800 + r)))
			for i := 0; i < ops; i++ {
				if _, _, err := db.Get(uint64(rng.Intn(keySpace))); err != nil {
					if !closed(err) {
						fail("reader %d: Get: %v", r, err)
					}
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(900))
		for i := 0; i < ops/10; i++ {
			lo := uint64(rng.Intn(keySpace))
			it, err := db.NewIterator(lo, lo+100)
			if err != nil {
				if !closed(err) {
					fail("iterator: NewIterator: %v", err)
				}
				return
			}
			prev := uint64(0)
			first := true
			for it.Next() {
				if !first && it.Key() <= prev {
					fail("iterator: keys out of order: %d after %d", it.Key(), prev)
					it.Close()
					return
				}
				prev, first = it.Key(), false
			}
			if err := it.Close(); err != nil && !closed(err) {
				fail("iterator: Close: %v", err)
				return
			}
		}
	}()

	// Closer: fires mid-flight, racing admission gates, in-flight cascade
	// steps, and snapshot readers. Everything after this must drain via
	// ErrClosed without the race detector or scheduler shutdown tripping.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1000))
		spin := 200 + rng.Intn(200)
		for i := 0; i < spin; i++ {
			_ = db.Stats()
		}
		if err := db.Close(); err != nil && !closed(err) {
			fail("closer: %v", err)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if err := db.Close(); !closed(err) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}
